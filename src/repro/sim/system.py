"""Full-system assembly: SM frontend + crossbars + L2 slices + MCs.

This wires the substrates into the architecture of paper Fig. 1/9 and
exposes :func:`simulate`, the package's main entry point.
"""

from __future__ import annotations

import gc
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cache.l2cache import DIRTY_FILL, L2Cache, L2Outcome
from repro.config.gpu import GPUConfig
from repro.config.scheduler import SchedulerConfig, baseline_scheduler
from repro.dram.channel import Channel
from repro.dram.energy import compute_energy
from repro.dram.request import MemoryRequest
from repro.errors import SimulationError
from repro.gpu.frontend import GPUFrontend
from repro.gpu.interconnect import Crossbar
from repro.gpu.warp import Access, Warp, WarpOp
from repro.sched.controller import MemoryController
from repro.sim.engine import Engine
from repro.sim.report import L2Summary, SimReport
from repro.sim.spec import SimSpec
from repro.telemetry.hub import NULL_HUB, MetricsHub
from repro.telemetry.sampler import WindowSeries
from repro.vp.predictor import make_predictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.workloads.base import Workload

#: Retry interval (memory cycles) when an L2 slice's MSHR file is full.
_MSHR_RETRY_CYCLES = 8.0


class GPUSystem:
    """One simulated GPU (Table I baseline unless configured otherwise)."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        scheduler: Optional[SchedulerConfig] = None,
        *,
        record_activations: bool = True,
        log_commands: bool = False,
        telemetry: Optional[MetricsHub] = None,
    ) -> None:
        self.config = config or GPUConfig()
        self.scheduler = scheduler or baseline_scheduler()
        #: Opt-in observability hub; :data:`NULL_HUB` (all no-ops) when
        #: absent, so the hot path is unchanged with telemetry off.
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.config.validate()
        self.scheduler.validate()
        self.engine = Engine()
        mapping = self.config.mapping
        self.channels = [
            Channel(
                ch,
                mapping,
                self.config.timings,
                record_activations=record_activations,
                log_commands=log_commands,
                refresh_enabled=self.config.refresh_enabled,
            )
            for ch in range(mapping.num_channels)
        ]
        self.l2s = [L2Cache(self.config.l2) for _ in self.channels]
        self.controllers = [
            MemoryController(
                channel,
                config=self.config,
                sched_config=self.scheduler,
                engine=self.engine,
                reply_fn=self._make_reply_fn(ch),
                predictor=make_predictor(self.scheduler.vp, self.l2s[ch]),
                telemetry=self.telemetry,
            )
            for ch, channel in enumerate(self.channels)
        ]
        icnt_mem = self.config.core_to_mem(
            self.config.interconnect_latency_core
        )
        self._req_xbar = Crossbar(
            self.engine, mapping.num_channels, latency_mem_cycles=icnt_mem
        )
        self._reply_xbar = Crossbar(
            self.engine, self.config.num_sms, latency_mem_cycles=icnt_mem
        )
        self._l2_latency_mem = self.config.core_to_mem(
            self.config.l2.hit_latency_core
        )
        self.frontend: Optional[GPUFrontend] = None
        #: Shared per-tenant accounting; installed by
        #: :meth:`_attach_tenants` for multi-tenant specs only.
        self.tenant_tracker = None
        self.engine.diagnostics = self._deadlock_snapshot

    @classmethod
    def from_spec(
        cls,
        spec: SimSpec,
        *,
        log_commands: bool = False,
        telemetry: Optional[MetricsHub] = None,
    ) -> "GPUSystem":
        """Assemble a system from a :class:`~repro.sim.spec.SimSpec`.

        The spec's device (when named) is resolved onto its GPU config;
        ``spec.telemetry`` creates a fresh hub unless one is passed in.
        """
        if telemetry is None and spec.telemetry:
            telemetry = MetricsHub()
        system = cls(
            config=spec.resolve_config(),
            scheduler=spec.scheduler,
            record_activations=spec.record_activations,
            log_commands=log_commands,
            telemetry=telemetry,
        )
        system._attach_ecc(spec)
        system._attach_tenants(spec)
        return system

    def _attach_ecc(self, spec: SimSpec) -> None:
        """Install per-channel ECC/fault read paths when the spec asks.

        With ``ecc="none"`` and faults disabled this is a no-op — the
        channels keep ``read_path=None`` and the hot path is untouched
        (the differential tests pin that to the golden reports).
        """
        if spec.ecc == "none" and not spec.faults.enabled:
            return
        from repro.dram.devices import get_device
        from repro.dram.ecc import (
            DEFAULT_ECC_WORD_BITS,
            FaultInjector,
            ReadPathECC,
            get_ecc,
        )

        code = get_ecc(spec.ecc)
        word_bits = (
            get_device(spec.device).ecc_word_bits
            if spec.device is not None
            else DEFAULT_ECC_WORD_BITS
        )
        line_bits = self.config.l2.line_bytes * 8
        words_per_line = max(1, line_bits // word_bits)
        stored_bits = words_per_line * code.codeword_bits(word_bits)
        seed = spec.content_seed()
        timings = self.config.timings
        for channel in self.channels:
            injector = None
            if spec.faults.enabled:
                injector = FaultInjector(
                    spec.faults,
                    trcd=timings.tRCD,
                    trp=timings.tRP,
                    seed=seed,
                    channel_id=channel.channel_id,
                    stored_bits=stored_bits,
                )
            channel.attach_read_path(
                ReadPathECC(
                    code=code,
                    word_bits=word_bits,
                    words_per_line=words_per_line,
                    injector=injector,
                )
            )

    def _attach_tenants(self, spec: SimSpec) -> None:
        """Install per-tenant accounting and the mix's arbiter.

        Strictly a no-op unless the spec carries a *multi*-tenant mix:
        a single-tenant mix is pure composition sugar and must simulate
        field-identically to the plain single-workload run, so nothing
        attaches for it (the differential tests pin this).
        """
        if spec.tenants is None or not spec.tenants.multi:
            return
        from repro.sched.tenants import TenantTracker

        tracker = TenantTracker(spec.tenants)
        self.tenant_tracker = tracker
        for mc in self.controllers:
            mc.attach_tenants(tracker, spec.tenants)

    def _deadlock_snapshot(self) -> str:
        """Per-controller queue state for the engine's livelock error.

        Appended to the ``max_events`` overflow message so a deadlocked
        cell in a failure manifest shows *where* requests are stuck —
        which controller, which banks, how deep — without re-running
        the simulation under a debugger.
        """
        parts = []
        for ch, mc in enumerate(self.controllers):
            queue = mc.queue
            if queue.empty:
                continue
            per_bank = ",".join(
                f"b{bank}:{count}"
                for bank, count in queue.pending_per_bank().items()
            )
            parts.append(
                f"mc{ch}[pending={len(queue)} "
                f"ingress={queue.ingress_backlog} {per_bank or '-'}]"
            )
        unfinished = ""
        if self.frontend is not None:
            stuck = self.frontend.unfinished()
            if stuck:
                unfinished = f"; unfinished_warps={len(stuck)}"
        return (
            "pending per bank: " + (" ".join(parts) or "none") + unfinished
        )

    # ------------------------------------------------------------------
    # Request path: SM -> crossbar -> L2 -> MC
    # ------------------------------------------------------------------
    def _mem_access(self, access: Access, warp: Warp) -> None:
        ch = self.config.mapping.channel_of(access.addr)
        self._req_xbar.deliver(
            ch, lambda: self._l2_access(ch, access, warp)
        )

    def _l2_access(self, ch: int, access: Access, warp: Warp) -> None:
        l2 = self.l2s[ch]
        waiter = DIRTY_FILL if access.is_write else warp
        result = l2.access(
            access.addr,
            is_write=access.is_write,
            full_line=access.full_line,
            waiter=waiter,
        )
        if result.outcome is L2Outcome.HIT:
            if not access.is_write:
                self.engine.after(
                    self._l2_latency_mem,
                    lambda: self._reply_to_warp(warp),
                )
        elif result.outcome is L2Outcome.MISS:
            request = MemoryRequest.from_address(
                access.addr,
                is_write=False,
                mapping=self.config.mapping,
                # Store-fetches must never be approximated away: their
                # merged store data would be lost (DESIGN.md §5).
                approximable=access.approximable and not access.is_write,
                tag=access.tag,
                tenant_id=warp.tenant_id,
            )
            self.engine.after(
                self._l2_latency_mem,
                lambda: self.controllers[ch].submit(request),
            )
        elif result.outcome is L2Outcome.MISS_NO_FETCH:
            if result.writeback_line is not None:
                self._submit_writeback(ch, result.writeback_line)
        elif result.outcome is L2Outcome.STALL:
            self.engine.after(
                _MSHR_RETRY_CYCLES,
                lambda: self._l2_access(ch, access, warp),
            )
        # MISS_MERGED: the waiter is registered; nothing more to do.

    def _submit_writeback(self, ch: int, line_addr: int) -> None:
        addr = line_addr * self.config.l2.line_bytes
        request = MemoryRequest.from_address(
            addr, is_write=True, mapping=self.config.mapping
        )
        if request.channel != ch:
            raise SimulationError(
                "write-back decoded to a different channel: "
                f"{request.channel} != {ch}"
            )
        self.controllers[ch].submit(request)

    # ------------------------------------------------------------------
    # Reply path: MC -> L2 fill -> crossbar -> SM
    # ------------------------------------------------------------------
    def _make_reply_fn(self, ch: int):
        def reply(request: MemoryRequest, approx: bool, donor) -> None:
            if request.is_write:
                return
            l2 = self.l2s[ch]
            if approx:
                # Dropped request: answer waiters, do not fill the L2.
                waiters = l2.cancel_fill(request.addr)
            else:
                waiters, writeback = l2.fill(request.addr)
                if writeback is not None:
                    self._submit_writeback(ch, writeback)
            for warp in waiters:
                self._reply_xbar.deliver(
                    warp.sm_id,
                    lambda w=warp: self.frontend.on_load_reply(w),
                )

        return reply

    def _reply_to_warp(self, warp: Warp) -> None:
        self._reply_xbar.deliver(
            warp.sm_id, lambda: self.frontend.on_load_reply(warp)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        warp_streams: Sequence[Sequence[WarpOp]],
        *,
        workload_name: str = "custom",
        max_events: int = 200_000_000,
        stream_tenants: Optional[Sequence[int]] = None,
    ) -> SimReport:
        """Execute the warp streams to completion and build the report.

        ``stream_tenants`` (one ``tenant_id`` per stream, from the
        :class:`~repro.workloads.tenant_mix.TenantMix` composer) turns
        on per-tenant warp attribution and the report's per-tenant
        section; ``None`` is the single-tenant path.
        """
        self.frontend = GPUFrontend(
            self.engine, self.config, warp_streams, self._mem_access,
            stream_tenants=stream_tenants,
        )
        sampler: Optional[WindowSeries] = None
        if self.telemetry.enabled:
            sampler = WindowSeries(self.telemetry, self)
            sampler.start()
        self.frontend.start()
        # The event loop allocates short-lived containers (candidate
        # keys, reply closures) at a rate that keeps the cyclic GC's
        # gen-0 threshold firing constantly, yet none of them form
        # cycles — refcounting reclaims everything. Park the collector
        # for the loop; restore the caller's setting either way.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            self.engine.run(max_events=max_events)
        finally:
            if gc_was_enabled:
                gc.enable()
        if not self.frontend.all_finished:
            stuck = self.frontend.unfinished()
            # Attach the same diagnostics snapshot the max_events
            # overflow gets, so a drained-but-stuck cell in a failure
            # manifest shows where its requests sit. The snapshot must
            # never mask the primary error.
            try:
                snapshot = f" [{self._deadlock_snapshot()}]"
            except Exception:
                snapshot = ""
            raise SimulationError(
                f"simulation drained with {len(stuck)} unfinished warps "
                f"(first: warp {stuck[0].warp_id}, state {stuck[0].state})"
                f"{snapshot}"
            )
        for channel in self.channels:
            channel.finalize()
        elapsed_mem = self.frontend.finish_time_mem
        l2 = L2Summary(
            hits=sum(c.hits for c in self.l2s),
            misses=sum(c.misses for c in self.l2s),
            writebacks=sum(c.writebacks for c in self.l2s),
            fills=sum(c.fills for c in self.l2s),
        )
        stats = [channel.stats for channel in self.channels]
        read_paths = [
            channel.read_path for channel in self.channels
            if channel.read_path is not None
        ]
        energy = compute_energy(
            stats,
            self.config.energy,
            elapsed_mem,
            self.config.mem_clock_mhz,
            ecc_nj=sum(rp.energy_nj() for rp in read_paths),
        )
        ecc_summary = None
        if read_paths:
            from repro.dram.ecc import summarize_read_paths

            elapsed_us = (
                elapsed_mem / self.config.mem_clock_mhz
                if self.config.mem_clock_mhz else 0.0
            )
            ecc_summary = summarize_read_paths(
                read_paths,
                total_energy_nj=energy.total_nj,
                elapsed_us=elapsed_us,
            )
        drops = [d for mc in self.controllers for d in mc.drops]
        timeline = (
            sampler.finalize(elapsed_mem) if sampler is not None else None
        )
        tenants_summary = None
        if self.tenant_tracker is not None:
            tenants_summary = self.tenant_tracker.summarize(
                finish_times=self.frontend.tenant_finish_time,
                instructions=self.frontend.tenant_instructions(),
            )
        return SimReport(
            workload=workload_name,
            scheme=self.scheduler.name,
            elapsed_mem_cycles=elapsed_mem,
            elapsed_core_cycles=self.config.mem_to_core(elapsed_mem),
            total_instructions=self.frontend.total_instructions,
            channel_stats=stats,
            drops=drops,
            l2=l2,
            energy=energy,
            energy_params=self.config.energy,
            final_dms_delays=[mc.dms.current_delay for mc in self.controllers],
            final_th_rbls=[mc.ams.th_rbl for mc in self.controllers],
            timeline=timeline,
            ecc=ecc_summary,
            tenants=tenants_summary,
        )


def simulate_spec(
    workload: "Workload",
    spec: SimSpec,
    *,
    telemetry: Optional[MetricsHub] = None,
) -> SimReport:
    """Simulate ``workload`` as described by ``spec`` — the primary
    entry point.

    With ``spec.measure_error`` the AMS drop log is replayed through the
    workload's kernel (values substituted by the VP's donor lines) and
    ``report.application_error`` is filled in. With a telemetry hub
    (``spec.telemetry`` or an explicit ``telemetry=``),
    ``report.timeline`` carries the per-window series.

    When ``spec.tenants`` names a mix, ``workload`` supplies only the
    run-level scale and seed: the simulated trace is the
    :class:`~repro.workloads.tenant_mix.TenantMix` composed from the
    mix's own workload roster (pass a ready-made ``TenantMix`` to skip
    the re-composition).
    """
    system = GPUSystem.from_spec(spec, telemetry=telemetry)
    if spec.tenants is not None:
        from repro.workloads.tenant_mix import TenantMix

        if not isinstance(workload, TenantMix):
            workload = TenantMix(
                spec.tenants, scale=workload.scale, seed=workload.seed
            )
    streams = workload.warp_streams(system.config)
    report = system.run(
        streams,
        workload_name=workload.name,
        stream_tenants=getattr(workload, "stream_tenants", None),
    )
    if spec.measure_error:
        from repro.approx.replay import measure_application_error

        report.application_error = measure_application_error(
            workload, report.drops, config=system.config
        )
    return report


def simulate(
    workload: "Workload",
    *,
    scheduler: Optional[SchedulerConfig] = None,
    config: Optional[GPUConfig] = None,
    device: Optional[str] = None,
    record_activations: bool = True,
    measure_error: bool = False,
    telemetry: Optional[MetricsHub] = None,
) -> SimReport:
    """Simulate ``workload`` under ``scheduler`` on the Table I GPU.

    Compatibility shim over :func:`simulate_spec`, kept for the
    pre-:class:`SimSpec` call sites (deprecated; new code should build a
    :class:`~repro.sim.spec.SimSpec` and call :func:`simulate_spec`).
    The keyword arguments map one-to-one onto spec fields and behaviour
    is identical.
    """
    import warnings

    warnings.warn(
        "simulate(scheduler=..., config=...) is deprecated; build a "
        "SimSpec and call simulate_spec(workload, spec) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = SimSpec(
        scheduler=scheduler if scheduler is not None else baseline_scheduler(),
        device=device,
        config=config,
        measure_error=measure_error,
        record_activations=record_activations,
    )
    return simulate_spec(workload, spec, telemetry=telemetry)
