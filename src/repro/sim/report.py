"""Simulation result container, derived metrics, and serialization.

:meth:`SimReport.to_dict` / :meth:`SimReport.from_dict` are *lossless*:
a round-tripped report compares equal (``==``) to the original, field by
field. This is what lets the persistent result cache
(:mod:`repro.harness.cache`) and the parallel runner treat
simulate-then-store-then-load as indistinguishable from a fresh run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config.energy import DRAMEnergyParams
from repro.dram.ecc import ECCSummary
from repro.dram.energy import EnergyBreakdown, compute_energy
from repro.dram.stats import ChannelStats, merge_rbl_histograms
from repro.telemetry.series import Timeline
from repro.vp.predictor import DropRecord


def _encode_tag(tag: Any) -> Any:
    """JSON-encode a workload tag, preserving tuples (the usual shape)."""
    if isinstance(tag, tuple):
        return {"__tuple__": [_encode_tag(item) for item in tag]}
    if isinstance(tag, list):
        return {"__list__": [_encode_tag(item) for item in tag]}
    return tag


def _decode_tag(tag: Any) -> Any:
    """Inverse of :func:`_encode_tag`."""
    if isinstance(tag, dict):
        if "__tuple__" in tag:
            return tuple(_decode_tag(item) for item in tag["__tuple__"])
        if "__list__" in tag:
            return [_decode_tag(item) for item in tag["__list__"]]
    return tag


def _drop_to_dict(drop: DropRecord) -> dict:
    return {
        "rid": drop.rid,
        "addr": drop.addr,
        "tag": _encode_tag(drop.tag),
        "donor_line_addr": drop.donor_line_addr,
        "time": drop.time,
        "channel": drop.channel,
    }


def _drop_from_dict(data: dict) -> DropRecord:
    return DropRecord(
        rid=data["rid"],
        addr=data["addr"],
        tag=_decode_tag(data["tag"]),
        donor_line_addr=data["donor_line_addr"],
        time=data["time"],
        channel=data["channel"],
    )


@dataclass
class TenantReport:
    """Per-tenant counters of one multi-tenant run.

    The intrinsic fields are filled by the simulation itself (the
    controller-side :class:`~repro.sched.tenants.TenantTracker` plus
    the frontend's per-tenant finish/instruction accounting).
    ``solo_mem_cycles`` / ``slowdown`` stay ``None`` until
    :func:`repro.harness.tenants.attach_slowdowns` compares the run
    against the tenant's cached solo baseline — they are presentation
    data, never part of the cached report.
    """

    name: str
    tenant_class: str
    workload: str
    instructions: int = 0
    finish_mem_cycles: float = 0.0
    reads_arrived: int = 0
    writes_arrived: int = 0
    requests_served: int = 0
    requests_dropped: int = 0
    activations: int = 0
    solo_mem_cycles: Optional[float] = None
    slowdown: Optional[float] = None

    @property
    def coverage(self) -> float:
        """This tenant's dropped / arrived reads (per-tenant coverage)."""
        return (
            self.requests_dropped / self.reads_arrived
            if self.reads_arrived else 0.0
        )

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "name": self.name,
            "tenant_class": self.tenant_class,
            "workload": self.workload,
            "instructions": self.instructions,
            "finish_mem_cycles": self.finish_mem_cycles,
            "reads_arrived": self.reads_arrived,
            "writes_arrived": self.writes_arrived,
            "requests_served": self.requests_served,
            "requests_dropped": self.requests_dropped,
            "activations": self.activations,
            "solo_mem_cycles": self.solo_mem_cycles,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantReport":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class TenantSummary:
    """The per-tenant section of a multi-tenant :class:`SimReport`."""

    #: Arbiter registry name that shared the controllers.
    arbiter: str
    #: One entry per tenant, in roster (``tenant_id``) order.
    tenants: list[TenantReport] = field(default_factory=list)
    #: Jain fairness index over per-tenant slowdowns; filled alongside
    #: :attr:`TenantReport.slowdown` by the harness, never cached.
    jain_fairness: Optional[float] = None

    def row_energy_shares(self) -> list[float]:
        """Each tenant's share of row energy (activation-proportional)."""
        total = sum(t.activations for t in self.tenants)
        if not total:
            return [0.0] * len(self.tenants)
        return [t.activations / total for t in self.tenants]

    def drop_shares(self) -> list[float]:
        """Each tenant's share of all dropped (approximated) reads."""
        total = sum(t.requests_dropped for t in self.tenants)
        if not total:
            return [0.0] * len(self.tenants)
        return [t.requests_dropped / total for t in self.tenants]

    def served_shares(self) -> list[float]:
        """Each tenant's share of DRAM column accesses served."""
        total = sum(t.requests_served for t in self.tenants)
        if not total:
            return [0.0] * len(self.tenants)
        return [t.requests_served / total for t in self.tenants]

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "arbiter": self.arbiter,
            "tenants": [t.to_dict() for t in self.tenants],
            "jain_fairness": self.jain_fairness,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            arbiter=data["arbiter"],
            tenants=[TenantReport.from_dict(t) for t in data["tenants"]],
            jain_fairness=data.get("jain_fairness"),
        )


@dataclass
class L2Summary:
    """Aggregate L2 statistics across slices."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "fills": self.fills,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "L2Summary":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class SimReport:
    """Everything a simulation run produced.

    Paper metrics (Section II-D):

    * ``activations``, ``avg_rbl``, ``rbl_histogram`` — row-locality;
    * ``ipc`` — instructions per *core* cycle;
    * ``row_energy_nj`` — the headline energy metric;
    * ``coverage`` — dropped / arrived global reads;
    * ``bwutil`` — DRAM data-bus utilisation (Dyn-DMS's proxy for IPC).
    """

    workload: str
    scheme: str
    elapsed_mem_cycles: float
    elapsed_core_cycles: float
    total_instructions: int
    channel_stats: list[ChannelStats]
    drops: list[DropRecord]
    l2: L2Summary
    energy: EnergyBreakdown
    energy_params: DRAMEnergyParams
    #: Mean DMS delay in force at phase ends (diagnostics; Dyn-DMS only).
    final_dms_delays: list[float] = field(default_factory=list)
    final_th_rbls: list[int] = field(default_factory=list)
    #: Application error, filled in by the approximation replay pipeline.
    application_error: Optional[float] = None
    #: Windowed telemetry series; present only when the run was executed
    #: with a :class:`~repro.telemetry.hub.MetricsHub` attached.
    timeline: Optional[Timeline] = None
    #: Reliability counters + FIT/carbon estimates; present only when an
    #: ECC code or the fault injector was active (``None`` keeps the
    #: serialized form — and the seed golden reports — unchanged).
    ecc: Optional[ECCSummary] = None
    #: Per-tenant counters; present only when a multi-tenant mix ran
    #: (``None`` keeps single-tenant serialized forms byte-identical).
    tenants: Optional[TenantSummary] = None

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Instructions per core cycle."""
        if self.elapsed_core_cycles <= 0:
            return 0.0
        return self.total_instructions / self.elapsed_core_cycles

    @property
    def activations(self) -> int:
        """Total row activations across channels."""
        return sum(s.activations for s in self.channel_stats)

    @property
    def requests_served(self) -> int:
        """Column accesses served by the DRAM banks."""
        return sum(s.requests_served for s in self.channel_stats)

    @property
    def requests_dropped(self) -> int:
        """Requests answered by the VP unit instead of DRAM."""
        return sum(s.requests_dropped for s in self.channel_stats)

    @property
    def reads_arrived(self) -> int:
        """Global reads that reached the memory controllers."""
        return sum(s.reads_arrived for s in self.channel_stats)

    @property
    def avg_rbl(self) -> float:
        """Average row buffer locality (served requests / activations)."""
        acts = self.activations
        return self.requests_served / acts if acts else 0.0

    @property
    def rbl_histogram(self) -> Counter:
        """Merged RBL histogram over all channels."""
        return merge_rbl_histograms(self.channel_stats)

    @property
    def coverage(self) -> float:
        """Prediction coverage: dropped / arrived global reads."""
        arrived = self.reads_arrived
        return self.requests_dropped / arrived if arrived else 0.0

    @property
    def row_energy_nj(self) -> float:
        """Row (activate+restore+precharge) energy."""
        return self.energy.row_nj

    @property
    def bwutil(self) -> float:
        """Mean DRAM data-bus utilisation over the run."""
        if self.elapsed_mem_cycles <= 0:
            return 0.0
        busy = sum(s.bus.total_busy for s in self.channel_stats)
        return busy / (self.elapsed_mem_cycles * len(self.channel_stats))

    # ------------------------------------------------------------------
    def normalized_row_energy(self, baseline: "SimReport") -> float:
        """Row energy relative to a baseline run."""
        if baseline.row_energy_nj <= 0:
            return 1.0
        return self.row_energy_nj / baseline.row_energy_nj

    def normalized_ipc(self, baseline: "SimReport") -> float:
        """IPC relative to a baseline run."""
        if baseline.ipc <= 0:
            return 1.0
        return self.ipc / baseline.ipc

    def normalized_activations(self, baseline: "SimReport") -> float:
        """Activation count relative to a baseline run."""
        if baseline.activations <= 0:
            return 1.0
        return self.activations / baseline.activations

    # ------------------------------------------------------------------
    # Serialization (persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-serializable form; see :meth:`from_dict`.

        Reliability fields are emitted only when active: the ``ecc``
        section and the ``energy.ecc_nj`` component appear iff an ECC
        read path ran, so reports from ECC-free runs — including every
        pinned golden report — keep the exact pre-ECC key set.
        """
        payload = {
            "workload": self.workload,
            "scheme": self.scheme,
            "elapsed_mem_cycles": self.elapsed_mem_cycles,
            "elapsed_core_cycles": self.elapsed_core_cycles,
            "total_instructions": self.total_instructions,
            "channel_stats": [s.to_dict() for s in self.channel_stats],
            "drops": [_drop_to_dict(d) for d in self.drops],
            "l2": self.l2.to_dict(),
            "energy": {
                "row_nj": self.energy.row_nj,
                "access_nj": self.energy.access_nj,
                "background_nj": self.energy.background_nj,
            },
            "energy_params": {
                "technology": self.energy_params.technology,
                "e_act_nj": self.energy_params.e_act_nj,
                "e_rd_nj": self.energy_params.e_rd_nj,
                "e_wr_nj": self.energy_params.e_wr_nj,
                "background_mw": self.energy_params.background_mw,
                "e_ref_nj": self.energy_params.e_ref_nj,
                "baseline_row_energy_fraction": (
                    self.energy_params.baseline_row_energy_fraction
                ),
            },
            "final_dms_delays": list(self.final_dms_delays),
            "final_th_rbls": list(self.final_th_rbls),
            "application_error": self.application_error,
            "timeline": (
                self.timeline.to_dict() if self.timeline is not None else None
            ),
        }
        if self.energy.ecc_nj:
            payload["energy"]["ecc_nj"] = self.energy.ecc_nj
        if self.ecc is not None:
            payload["ecc"] = self.ecc.to_dict()
        if self.tenants is not None:
            payload["tenants"] = self.tenants.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "SimReport":
        """Rebuild a report; ``from_dict(r.to_dict()) == r`` holds."""
        ecc_data = data.get("ecc")
        tenants_data = data.get("tenants")
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            elapsed_mem_cycles=data["elapsed_mem_cycles"],
            elapsed_core_cycles=data["elapsed_core_cycles"],
            total_instructions=data["total_instructions"],
            channel_stats=[
                ChannelStats.from_dict(s) for s in data["channel_stats"]
            ],
            drops=[_drop_from_dict(d) for d in data["drops"]],
            l2=L2Summary.from_dict(data["l2"]),
            energy=EnergyBreakdown(**data["energy"]),
            energy_params=DRAMEnergyParams(**data["energy_params"]),
            final_dms_delays=list(data["final_dms_delays"]),
            final_th_rbls=list(data["final_th_rbls"]),
            application_error=data["application_error"],
            timeline=Timeline.from_dict(data.get("timeline")),
            ecc=(
                ECCSummary.from_dict(ecc_data)
                if ecc_data is not None else None
            ),
            tenants=(
                TenantSummary.from_dict(tenants_data)
                if tenants_data is not None else None
            ),
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A short human-readable digest."""
        lines = [
            f"workload={self.workload} scheme={self.scheme}",
            f"  IPC            {self.ipc:.3f}"
            f"  (instr {self.total_instructions},"
            f" core cycles {self.elapsed_core_cycles:.0f})",
            f"  activations    {self.activations}",
            f"  avg RBL        {self.avg_rbl:.2f}",
            f"  row energy     {self.row_energy_nj / 1e3:.2f} uJ",
            f"  coverage       {self.coverage:.1%}"
            f"  (drops {self.requests_dropped})",
            f"  BW utilisation {self.bwutil:.1%}",
            f"  L2 hit rate    {self.l2.hit_rate:.1%}",
        ]
        if self.application_error is not None:
            lines.append(f"  app error      {self.application_error:.2%}")
        if self.ecc is not None:
            lines.append(
                f"  ECC ({self.ecc.code})  corrected {self.ecc.words_corrected}"
                f"  detected {self.ecc.words_detected}"
                f"  silent {self.ecc.words_silent}"
                f"  FIT {self.ecc.fit:.3g}"
            )
        if self.tenants is not None:
            lines.append(f"  tenants ({self.tenants.arbiter})")
            energy_shares = self.tenants.row_energy_shares()
            for tenant, share in zip(self.tenants.tenants, energy_shares):
                slow = (
                    f"  slowdown {tenant.slowdown:.2f}"
                    if tenant.slowdown is not None else ""
                )
                lines.append(
                    f"    {tenant.name} [{tenant.tenant_class}]"
                    f"  served {tenant.requests_served}"
                    f"  drops {tenant.requests_dropped}"
                    f"  row-energy {share:.1%}{slow}"
                )
            if self.tenants.jain_fairness is not None:
                lines.append(
                    f"    Jain fairness  {self.tenants.jain_fairness:.3f}"
                )
        if self.timeline is not None:
            lines.append(
                f"  telemetry      {len(self.timeline)} windows "
                f"of {self.timeline.window_cycles} cycles"
            )
        return "\n".join(lines)
