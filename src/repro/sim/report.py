"""Simulation result container and derived metrics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.config.energy import DRAMEnergyParams
from repro.dram.energy import EnergyBreakdown, compute_energy
from repro.dram.stats import ChannelStats, merge_rbl_histograms
from repro.vp.predictor import DropRecord


@dataclass
class L2Summary:
    """Aggregate L2 statistics across slices."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class SimReport:
    """Everything a simulation run produced.

    Paper metrics (Section II-D):

    * ``activations``, ``avg_rbl``, ``rbl_histogram`` — row-locality;
    * ``ipc`` — instructions per *core* cycle;
    * ``row_energy_nj`` — the headline energy metric;
    * ``coverage`` — dropped / arrived global reads;
    * ``bwutil`` — DRAM data-bus utilisation (Dyn-DMS's proxy for IPC).
    """

    workload: str
    scheme: str
    elapsed_mem_cycles: float
    elapsed_core_cycles: float
    total_instructions: int
    channel_stats: list[ChannelStats]
    drops: list[DropRecord]
    l2: L2Summary
    energy: EnergyBreakdown
    energy_params: DRAMEnergyParams
    #: Mean DMS delay in force at phase ends (diagnostics; Dyn-DMS only).
    final_dms_delays: list[float] = field(default_factory=list)
    final_th_rbls: list[int] = field(default_factory=list)
    #: Application error, filled in by the approximation replay pipeline.
    application_error: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Instructions per core cycle."""
        if self.elapsed_core_cycles <= 0:
            return 0.0
        return self.total_instructions / self.elapsed_core_cycles

    @property
    def activations(self) -> int:
        """Total row activations across channels."""
        return sum(s.activations for s in self.channel_stats)

    @property
    def requests_served(self) -> int:
        """Column accesses served by the DRAM banks."""
        return sum(s.requests_served for s in self.channel_stats)

    @property
    def requests_dropped(self) -> int:
        """Requests answered by the VP unit instead of DRAM."""
        return sum(s.requests_dropped for s in self.channel_stats)

    @property
    def reads_arrived(self) -> int:
        """Global reads that reached the memory controllers."""
        return sum(s.reads_arrived for s in self.channel_stats)

    @property
    def avg_rbl(self) -> float:
        """Average row buffer locality (served requests / activations)."""
        acts = self.activations
        return self.requests_served / acts if acts else 0.0

    @property
    def rbl_histogram(self) -> Counter:
        """Merged RBL histogram over all channels."""
        return merge_rbl_histograms(self.channel_stats)

    @property
    def coverage(self) -> float:
        """Prediction coverage: dropped / arrived global reads."""
        arrived = self.reads_arrived
        return self.requests_dropped / arrived if arrived else 0.0

    @property
    def row_energy_nj(self) -> float:
        """Row (activate+restore+precharge) energy."""
        return self.energy.row_nj

    @property
    def bwutil(self) -> float:
        """Mean DRAM data-bus utilisation over the run."""
        if self.elapsed_mem_cycles <= 0:
            return 0.0
        busy = sum(s.bus.total_busy for s in self.channel_stats)
        return busy / (self.elapsed_mem_cycles * len(self.channel_stats))

    # ------------------------------------------------------------------
    def normalized_row_energy(self, baseline: "SimReport") -> float:
        """Row energy relative to a baseline run."""
        if baseline.row_energy_nj <= 0:
            return 1.0
        return self.row_energy_nj / baseline.row_energy_nj

    def normalized_ipc(self, baseline: "SimReport") -> float:
        """IPC relative to a baseline run."""
        if baseline.ipc <= 0:
            return 1.0
        return self.ipc / baseline.ipc

    def normalized_activations(self, baseline: "SimReport") -> float:
        """Activation count relative to a baseline run."""
        if baseline.activations <= 0:
            return 1.0
        return self.activations / baseline.activations

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A short human-readable digest."""
        lines = [
            f"workload={self.workload} scheme={self.scheme}",
            f"  IPC            {self.ipc:.3f}"
            f"  (instr {self.total_instructions},"
            f" core cycles {self.elapsed_core_cycles:.0f})",
            f"  activations    {self.activations}",
            f"  avg RBL        {self.avg_rbl:.2f}",
            f"  row energy     {self.row_energy_nj / 1e3:.2f} uJ",
            f"  coverage       {self.coverage:.1%}"
            f"  (drops {self.requests_dropped})",
            f"  BW utilisation {self.bwutil:.1%}",
            f"  L2 hit rate    {self.l2.hit_rate:.1%}",
        ]
        if self.application_error is not None:
            lines.append(f"  app error      {self.application_error:.2%}")
        return "\n".join(lines)
