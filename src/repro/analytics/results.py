"""The ``ExperimentResults`` facade: aggregates, CIs, regression gates.

One object wraps a :class:`~repro.analytics.warehouse.Warehouse` and
exposes everything the report templates, the ``report`` CLI, and the
service's ``GET /v1/experiments/summary`` endpoint need — as
lazily-computed, memoized properties (``functools.cached_property``),
so the expensive statistics run at most once per object no matter how
many template fields reference them. The CLI render and the service
endpoint both call :meth:`ExperimentResults.summary`, which is what
makes "the dashboard agrees with the report" a structural guarantee
rather than a test assertion.

Aggregation model: rows group by **(app, scheme, device, ecc)**; the
seeds within a group are the sample. Headline metrics get percentile
bootstrap CIs across seeds; row-energy *savings* are computed
seed-paired against the baseline scheme of the same (app, device, ecc)
so per-seed workload variance cancels instead of inflating the CI.

Regression gating compares a current snapshot against a pinned baseline
snapshot with Mann–Whitney U tests (Holm-adjusted across the family)
plus a minimum-effect filter. With fewer than ``min_samples`` seeds per
side the U test is physically incapable of reaching significance (2v2
caps at p ≈ 0.33), so the gate degrades to an honest effect-size-only
check, labeled ``delta-only`` in the verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.analytics.stats import (
    DEFAULT_RESAMPLES,
    BootstrapCI,
    bootstrap_ci,
    holm_adjust,
    mann_whitney_u,
    mean,
)
from repro.analytics.warehouse import Warehouse

#: Snapshot document version (``report render --snapshot-out``).
SNAPSHOT_VERSION = 1

#: Optimization direction per gated metric: ``"min"`` = lower is
#: better (an increase is a regression), ``"max"`` = the reverse.
METRIC_DIRECTIONS = {
    "row_energy_nj": "min",
    "app_error": "min",
    "fit": "min",
    "ipc": "max",
    "coverage": "max",
    "bwutil": "max",
    "jain_fairness": "max",
}

#: Metrics gated by default (the paper's headline four).
DEFAULT_GATE_METRICS = ("row_energy_nj", "app_error", "fit", "ipc")

#: Metrics summarized with CIs in every report group.
SUMMARY_METRICS = ("row_energy_nj", "app_error", "fit", "ipc", "coverage")


def _group_key(row: dict) -> tuple:
    return (
        row["app"],
        row["scheme"],
        row.get("device") or "",
        row.get("ecc") or "",
    )


def _sortable(seed: Any) -> tuple:
    # NULL seeds (pre-warehouse blobs) sort after real ones, stably.
    return (seed is None, seed if seed is not None else 0)


@dataclass(frozen=True)
class Regression:
    """One significant regression verdict from the gate."""

    app: str
    scheme: str
    device: str
    ecc: str
    metric: str
    direction: str
    baseline_mean: float
    current_mean: float
    #: Relative change in the *worse* direction (positive = worse).
    rel_delta: float
    #: Holm-adjusted two-sided p-value; None on the delta-only path.
    p_value: Optional[float]
    #: ``"mann-whitney"`` or ``"delta-only"`` (too few seeds to test).
    method: str

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "scheme": self.scheme,
            "device": self.device,
            "ecc": self.ecc,
            "metric": self.metric,
            "direction": self.direction,
            "baseline_mean": self.baseline_mean,
            "current_mean": self.current_mean,
            "rel_delta": self.rel_delta,
            "p_value": self.p_value,
            "method": self.method,
        }


@dataclass
class ExperimentResults:
    """Lazily-computed analysis view over a results warehouse.

    The object is cheap to construct; every aggregate below it is a
    ``cached_property`` computed on first touch. Construct a fresh
    object after re-ingesting — memoized state deliberately never
    invalidates.
    """

    warehouse: Warehouse
    baseline_scheme: str = "Baseline"
    confidence: float = 0.95
    resamples: int = DEFAULT_RESAMPLES
    alpha: float = 0.05
    min_effect: float = 0.01
    min_samples: int = 4
    gate_metrics: Sequence[str] = DEFAULT_GATE_METRICS

    # ------------------------------------------------------------------
    @cached_property
    def rows(self) -> list[dict]:
        """All experiment rows, in the warehouse's deterministic order."""
        return self.warehouse.rows()

    @cached_property
    def groups(self) -> dict[tuple, list[dict]]:
        """Rows bucketed by (app, scheme, device, ecc), seed-sorted."""
        buckets: dict[tuple, list[dict]] = {}
        for row in self.rows:
            buckets.setdefault(_group_key(row), []).append(row)
        for bucket in buckets.values():
            bucket.sort(key=lambda r: _sortable(r.get("seed")))
        return dict(sorted(buckets.items()))

    def samples(self, key: tuple, metric: str) -> list[float]:
        """Per-seed values of ``metric`` in group ``key`` (None dropped)."""
        return [
            float(row[metric])
            for row in self.groups.get(key, [])
            if row.get(metric) is not None
        ]

    def _ci(self, values: Sequence[float]) -> Optional[BootstrapCI]:
        if not values:
            return None
        return bootstrap_ci(
            values, confidence=self.confidence, resamples=self.resamples
        )

    @cached_property
    def metric_cis(self) -> dict[tuple, dict[str, Optional[BootstrapCI]]]:
        """Bootstrap CI of each summary metric, per group."""
        return {
            key: {
                metric: self._ci(self.samples(key, metric))
                for metric in SUMMARY_METRICS
            }
            for key in self.groups
        }

    # ------------------------------------------------------------------
    @cached_property
    def row_energy_savings(self) -> dict[tuple, Optional[BootstrapCI]]:
        """Seed-paired row-energy savings vs the baseline scheme.

        For group (app, S, device, ecc) with S != baseline, the per-seed
        sample is ``1 - E_S(seed) / E_base(seed)`` over the seeds both
        groups share. Pairing cancels per-seed workload variance — with
        2 seeds an unpaired CI of the savings would be uselessly wide.
        """
        out: dict[tuple, Optional[BootstrapCI]] = {}
        for key, rows in self.groups.items():
            app, scheme, device, ecc = key
            if scheme == self.baseline_scheme:
                out[key] = None
                continue
            base_rows = self.groups.get(
                (app, self.baseline_scheme, device, ecc), []
            )
            base_by_seed = {
                r.get("seed"): r for r in base_rows
                if r.get("row_energy_nj") is not None
            }
            paired = []
            for row in rows:
                base = base_by_seed.get(row.get("seed"))
                if base is None or not base["row_energy_nj"]:
                    continue
                paired.append(
                    1.0 - row["row_energy_nj"] / base["row_energy_nj"]
                )
            out[key] = self._ci(paired)
        return out

    @cached_property
    def tenant_summary(self) -> dict:
        """Fairness / slowdown rollup over all multi-tenant rows."""
        rows = self.warehouse.tenant_rows()
        if not rows:
            return {"n_rows": 0, "by_class": {}, "jain_fairness": None}
        by_class: dict[str, list[float]] = {}
        for row in rows:
            if row.get("slowdown") is not None:
                by_class.setdefault(row["tenant_class"], []).append(
                    float(row["slowdown"])
                )
        jain_values = sorted({
            (r["content_key"], r["jain_fairness"])
            for r in rows if r.get("jain_fairness") is not None
        })
        return {
            "n_rows": len(rows),
            "by_class": {
                cls: self._ci(vals).to_dict()
                for cls, vals in sorted(by_class.items())
            },
            "jain_fairness": (
                ci.to_dict()
                if (ci := self._ci([v for _k, v in jain_values]))
                else None
            ),
        }

    @cached_property
    def failure_count(self) -> int:
        return len(self.warehouse.failures())

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The canonical aggregate document.

        This exact structure is rendered by the markdown/HTML templates
        *and* returned verbatim by ``GET /v1/experiments/summary`` —
        one code path, two consumers. Deterministic: groups are sorted
        by (app, scheme, device, ecc) and every number is a pure
        function of the warehouse contents and the statistics settings.
        """
        groups = []
        for key, rows in self.groups.items():
            app, scheme, device, ecc = key
            cis = self.metric_cis[key]
            savings = self.row_energy_savings[key]
            jain = [
                float(r["jain_fairness"]) for r in rows
                if r.get("jain_fairness") is not None
            ]
            groups.append({
                "app": app,
                "scheme": scheme,
                "device": device or None,
                "ecc": ecc or None,
                "seeds": [r.get("seed") for r in rows],
                "n": len(rows),
                "metrics": {
                    metric: (ci.to_dict() if ci is not None else None)
                    for metric, ci in cis.items()
                },
                "row_energy_savings": (
                    savings.to_dict() if savings is not None else None
                ),
                "jain_fairness": (
                    self._ci(jain).to_dict() if jain else None
                ),
            })
        return {
            "baseline_scheme": self.baseline_scheme,
            "confidence": self.confidence,
            "resamples": self.resamples,
            "n_experiments": len(self.rows),
            "n_groups": len(groups),
            "n_failures": self.failure_count,
            "groups": groups,
            "tenants": self.tenant_summary,
        }

    def snapshot(self) -> dict:
        """Pinnable raw-sample snapshot for future ``report diff`` runs.

        Carries the per-seed samples (not just aggregates) because the
        regression gate runs rank tests on the raw values.
        """
        groups = []
        for key, rows in self.groups.items():
            app, scheme, device, ecc = key
            groups.append({
                "app": app,
                "scheme": scheme,
                "device": device or None,
                "ecc": ecc or None,
                "seeds": [r.get("seed") for r in rows],
                "samples": {
                    metric: self.samples(key, metric)
                    for metric in SUMMARY_METRICS
                },
            })
        return {
            "version": SNAPSHOT_VERSION,
            "baseline_scheme": self.baseline_scheme,
            "groups": groups,
        }

    # ------------------------------------------------------------------
    def regressions_against(self, baseline_snapshot: dict) -> list[Regression]:
        """Gate the current warehouse against a pinned snapshot.

        For every (group, metric) present on both sides, a candidate
        regression needs a worse-direction relative mean delta above
        ``min_effect``; with at least ``min_samples`` seeds per side it
        additionally needs a Holm-adjusted Mann–Whitney p ≤ ``alpha``.
        Returns the surviving regressions in deterministic group order.
        """
        if baseline_snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                "baseline snapshot version mismatch: "
                f"{baseline_snapshot.get('version')!r} != {SNAPSHOT_VERSION}"
            )
        base_groups = {
            (
                g["app"], g["scheme"], g.get("device") or "",
                g.get("ecc") or "",
            ): g
            for g in baseline_snapshot.get("groups", [])
        }
        candidates: list[tuple[Regression, Optional[float]]] = []
        for key in self.groups:
            base = base_groups.get(key)
            if base is None:
                continue
            for metric in self.gate_metrics:
                direction = METRIC_DIRECTIONS.get(metric)
                if direction is None:
                    raise ValueError(f"metric has no direction: {metric}")
                current = self.samples(key, metric)
                baseline = [
                    float(v)
                    for v in base.get("samples", {}).get(metric, [])
                    if v is not None
                ]
                if not current or not baseline:
                    continue
                cur_mean = mean(current)
                base_mean = mean(baseline)
                denom = abs(base_mean)
                if denom == 0.0:
                    # A metric that was exactly zero: any nonzero drift
                    # in the worse direction is a full-scale regression.
                    denom = 1.0
                if direction == "min":
                    rel = (cur_mean - base_mean) / denom
                else:
                    rel = (base_mean - cur_mean) / denom
                if rel <= self.min_effect:
                    continue
                small = (
                    len(current) < self.min_samples
                    or len(baseline) < self.min_samples
                )
                raw_p: Optional[float] = None
                if not small:
                    raw_p = mann_whitney_u(current, baseline).p_value
                app, scheme, device, ecc = key
                candidates.append((
                    Regression(
                        app=app, scheme=scheme, device=device, ecc=ecc,
                        metric=metric, direction=direction,
                        baseline_mean=base_mean, current_mean=cur_mean,
                        rel_delta=rel, p_value=raw_p,
                        method=(
                            "delta-only" if small else "mann-whitney"
                        ),
                    ),
                    raw_p,
                ))
        # Holm-adjust the tested family; delta-only verdicts pass as-is.
        tested = [i for i, (_r, p) in enumerate(candidates) if p is not None]
        adjusted = holm_adjust([candidates[i][1] for i in tested])
        verdicts: list[Regression] = []
        adjusted_by_index = dict(zip(tested, adjusted))
        for i, (reg, raw_p) in enumerate(candidates):
            if raw_p is None:
                verdicts.append(reg)
                continue
            adj = adjusted_by_index[i]
            if adj <= self.alpha:
                verdicts.append(
                    Regression(**{**reg.to_dict(), "p_value": adj})
                )
        return verdicts


def load_snapshot(path: str | Path) -> dict:
    """Read a pinned snapshot document from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"not a snapshot document: {path}")
    return doc
