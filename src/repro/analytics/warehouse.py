"""Sqlite-backed experiment results warehouse.

The persistent :class:`~repro.harness.cache.ResultCache` is an
excellent *store* — content-addressed, atomic, self-healing — and a
terrible *database*: its keys are one-way hashes, so answering "what is
the mean row-energy saving of Dyn-DMS on gddr5x across seeds?" would
mean re-deriving every key from every possible spec. The warehouse
fixes that by walking the cache once (via ``ResultCache.iter_blobs``)
and flattening each blob into one sqlite row per (content key, seed)
with the energy / error / FIT / tenant columns queries actually filter
on, plus the full report JSON for anything they don't.

Alongside cache blobs it ingests two other result streams:

* **failure manifests** written by the runner (``--keep-going``) — one
  row per :class:`~repro.harness.faults.CellFailure`, so "which cells
  died and why" is queryable next to the cells that lived;
* **benchmark history** (``BENCH_*.json``) — the dated perf entries,
  so throughput trends live in the same store as the science.

Ingest is idempotent (``INSERT OR REPLACE`` keyed on the content key /
natural keys), so re-running it after a sweep only adds the new cells.
Everything is stdlib ``sqlite3``; the service tier reads the same file.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.telemetry.hub import (
    ANALYTICS_INGESTED_BENCH,
    ANALYTICS_INGESTED_FAILURES,
    ANALYTICS_INGESTED_ROWS,
    ANALYTICS_QUERIES,
    NULL_HUB,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.cache import ResultCache

#: Default warehouse file, relative to the working directory.
DEFAULT_WAREHOUSE_PATH = ".repro-warehouse.sqlite"

_ENV_PATH = "REPRO_WAREHOUSE"

#: Bump when the table layout changes; mismatched files are rebuilt
#: from scratch on open (the warehouse is a derived artifact — the
#: cache remains the source of truth, so dropping it loses nothing).
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS experiments (
    content_key TEXT PRIMARY KEY,
    app TEXT NOT NULL,
    scheme TEXT NOT NULL,
    device TEXT,
    ecc TEXT,
    seed INTEGER,
    scale REAL,
    ipc REAL NOT NULL,
    activations INTEGER NOT NULL,
    avg_rbl REAL NOT NULL,
    row_energy_nj REAL NOT NULL,
    total_energy_nj REAL NOT NULL,
    ecc_energy_nj REAL NOT NULL,
    coverage REAL NOT NULL,
    bwutil REAL NOT NULL,
    app_error REAL,
    fit REAL,
    carbon_g_per_gib_year REAL,
    flips_injected INTEGER,
    words_silent INTEGER,
    n_tenants INTEGER NOT NULL,
    jain_fairness REAL,
    elapsed_mem_cycles REAL NOT NULL,
    total_instructions INTEGER NOT NULL,
    mtime REAL NOT NULL,
    ingested_at REAL NOT NULL,
    report TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_experiments_group
    ON experiments (app, scheme, device, ecc);
CREATE TABLE IF NOT EXISTS tenant_rows (
    content_key TEXT NOT NULL,
    name TEXT NOT NULL,
    tenant_class TEXT NOT NULL,
    workload TEXT NOT NULL,
    requests_served INTEGER NOT NULL,
    requests_dropped INTEGER NOT NULL,
    activations INTEGER NOT NULL,
    slowdown REAL,
    PRIMARY KEY (content_key, name)
);
CREATE TABLE IF NOT EXISTS failures (
    app TEXT NOT NULL,
    label TEXT NOT NULL,
    content_key TEXT,
    error_type TEXT NOT NULL,
    message TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    elapsed REAL NOT NULL,
    manifest TEXT NOT NULL,
    PRIMARY KEY (manifest, app, label)
);
CREATE TABLE IF NOT EXISTS bench_history (
    bench TEXT NOT NULL,
    timestamp TEXT NOT NULL,
    entry TEXT NOT NULL,
    PRIMARY KEY (bench, timestamp)
);
"""

#: Columns exposed as query filters by :meth:`Warehouse.rows` and, via
#: the CLI/service layers, by ``report query`` and ``GET
#: /v1/experiments``. A fixed allow-list keeps user input out of SQL
#: identifiers entirely.
FILTER_COLUMNS = ("app", "scheme", "device", "ecc", "seed")


def resolve_warehouse_path(path: str | Path | None = None) -> Path:
    """The warehouse file: explicit arg, ``$REPRO_WAREHOUSE``, default."""
    import os

    if path is not None:
        return Path(path)
    return Path(os.environ.get(_ENV_PATH) or DEFAULT_WAREHOUSE_PATH)


def _flatten(
    key: str, blob: dict, mtime: float, now: float
) -> tuple[Optional[dict], list[dict]]:
    """One cache blob -> (experiments row, tenant rows); None if broken."""
    from repro.sim.report import SimReport

    try:
        report = SimReport.from_dict(blob["report"])
    except (KeyError, TypeError, ValueError, AttributeError):
        return None, []
    meta = blob.get("meta") if isinstance(blob.get("meta"), dict) else {}
    spec = meta.get("spec") if isinstance(meta.get("spec"), dict) else {}
    ecc_section = spec.get("ecc") if isinstance(spec.get("ecc"), dict) else {}
    row = {
        "content_key": key,
        "app": report.workload,
        "scheme": report.scheme,
        "device": spec.get("device"),
        "ecc": ecc_section.get("code") or (
            report.ecc.code if report.ecc is not None else None
        ),
        "seed": meta.get("seed"),
        "scale": meta.get("scale"),
        "ipc": report.ipc,
        "activations": report.activations,
        "avg_rbl": report.avg_rbl,
        "row_energy_nj": report.row_energy_nj,
        "total_energy_nj": report.energy.total_nj,
        "ecc_energy_nj": report.energy.ecc_nj,
        "coverage": report.coverage,
        "bwutil": report.bwutil,
        "app_error": report.application_error,
        "fit": report.ecc.fit if report.ecc is not None else None,
        "carbon_g_per_gib_year": (
            report.ecc.carbon_g_per_gib_year
            if report.ecc is not None else None
        ),
        "flips_injected": (
            report.ecc.flips_injected if report.ecc is not None else None
        ),
        "words_silent": (
            report.ecc.words_silent if report.ecc is not None else None
        ),
        "n_tenants": (
            len(report.tenants.tenants) if report.tenants is not None else 0
        ),
        "jain_fairness": (
            report.tenants.jain_fairness
            if report.tenants is not None else None
        ),
        "elapsed_mem_cycles": report.elapsed_mem_cycles,
        "total_instructions": report.total_instructions,
        "mtime": mtime,
        "ingested_at": now,
        "report": json.dumps(blob["report"], separators=(",", ":")),
    }
    tenant_rows: list[dict] = []
    if report.tenants is not None:
        for tenant in report.tenants.tenants:
            tenant_rows.append({
                "content_key": key,
                "name": tenant.name,
                "tenant_class": tenant.tenant_class,
                "workload": tenant.workload,
                "requests_served": tenant.requests_served,
                "requests_dropped": tenant.requests_dropped,
                "activations": tenant.activations,
                "slowdown": tenant.slowdown,
            })
    return row, tenant_rows


class Warehouse:
    """Queryable sqlite store of experiment results.

    Opens (and, if needed, creates or rebuilds) the database eagerly;
    use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        hub=NULL_HUB,
    ) -> None:
        self.path = resolve_warehouse_path(path)
        self.hub = hub
        if str(self.path) != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._ensure_schema()

    # ------------------------------------------------------------------
    def _ensure_schema(self) -> None:
        stored = None
        try:
            cur = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            )
            found = cur.fetchone()
            stored = int(found["value"]) if found else None
        except sqlite3.DatabaseError:
            stored = None
        if stored is not None and stored != SCHEMA_VERSION:
            # Derived artifact: rebuild rather than migrate.
            for table in (
                "experiments", "tenant_rows", "failures",
                "bench_history", "meta",
            ):
                self._conn.execute(f"DROP TABLE IF EXISTS {table}")
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest_cache(self, cache: "ResultCache") -> int:
        """Walk ``cache`` and upsert one row per blob; returns the count.

        Shares the lazy ``iter_blobs`` traversal with
        ``cache info --json``, so the two views of the cache can never
        drift. Blobs without a ``meta`` sidecar (stored before the
        warehouse existed) ingest with NULL seed/scale/device — still
        queryable by app and scheme.
        """
        now = time.time()
        count = 0
        for key, blob, mtime, _size in cache.iter_blobs():
            row, tenant_rows = _flatten(key, blob, mtime, now)
            if row is None:
                continue
            columns = ", ".join(row)
            holes = ", ".join("?" for _ in row)
            self._conn.execute(
                f"INSERT OR REPLACE INTO experiments ({columns})"
                f" VALUES ({holes})",
                tuple(row.values()),
            )
            self._conn.execute(
                "DELETE FROM tenant_rows WHERE content_key = ?", (key,)
            )
            for trow in tenant_rows:
                tcolumns = ", ".join(trow)
                tholes = ", ".join("?" for _ in trow)
                self._conn.execute(
                    f"INSERT OR REPLACE INTO tenant_rows ({tcolumns})"
                    f" VALUES ({tholes})",
                    tuple(trow.values()),
                )
            count += 1
        self._conn.commit()
        self.hub.inc(ANALYTICS_INGESTED_ROWS, count)
        return count

    def ingest_failures(self, manifest_path: str | Path) -> int:
        """Ingest a runner failure manifest; returns rows upserted."""
        path = Path(manifest_path)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        failures = doc.get("failures", doc) if isinstance(doc, dict) else doc
        if not isinstance(failures, list):
            raise ValueError(f"not a failure manifest: {path}")
        count = 0
        for failure in failures:
            if not isinstance(failure, dict):
                continue
            self._conn.execute(
                "INSERT OR REPLACE INTO failures"
                " (app, label, content_key, error_type, message,"
                "  attempts, elapsed, manifest)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(failure.get("app", "?")),
                    str(failure.get("label", "?")),
                    failure.get("key"),
                    str(failure.get("error_type", "?")),
                    str(failure.get("message", "")),
                    int(failure.get("attempts", 1)),
                    float(failure.get("elapsed", 0.0)),
                    str(path),
                ),
            )
            count += 1
        self._conn.commit()
        self.hub.inc(ANALYTICS_INGESTED_FAILURES, count)
        return count

    def ingest_bench(self, bench_path: str | Path) -> int:
        """Ingest one ``BENCH_*.json`` history; returns rows upserted."""
        path = Path(bench_path)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or "history" not in doc:
            raise ValueError(f"not a BENCH history file: {path}")
        bench = str(doc.get("benchmark", path.stem))
        count = 0
        for entry in doc["history"]:
            if not isinstance(entry, dict) or "timestamp" not in entry:
                continue
            self._conn.execute(
                "INSERT OR REPLACE INTO bench_history"
                " (bench, timestamp, entry) VALUES (?, ?, ?)",
                (
                    bench,
                    str(entry["timestamp"]),
                    json.dumps(entry, separators=(",", ":")),
                ),
            )
            count += 1
        self._conn.commit()
        self.hub.inc(ANALYTICS_INGESTED_BENCH, count)
        return count

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def rows(self, **filters: Any) -> list[dict]:
        """Experiment rows (no report blob), deterministically ordered.

        Filters are exact-match on :data:`FILTER_COLUMNS`; unknown
        filter names raise ``ValueError`` (they would otherwise fail
        silently as empty results).
        """
        unknown = set(filters) - set(FILTER_COLUMNS)
        if unknown:
            raise ValueError(
                f"unknown filter column(s): {sorted(unknown)}"
            )
        clauses = []
        params: list[Any] = []
        for column in FILTER_COLUMNS:
            if column in filters and filters[column] is not None:
                clauses.append(f"{column} = ?")
                params.append(filters[column])
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cur = self._conn.execute(
            "SELECT content_key, app, scheme, device, ecc, seed, scale,"
            " ipc, activations, avg_rbl, row_energy_nj, total_energy_nj,"
            " ecc_energy_nj, coverage, bwutil, app_error, fit,"
            " carbon_g_per_gib_year, flips_injected, words_silent,"
            " n_tenants, jain_fairness, elapsed_mem_cycles,"
            " total_instructions, mtime"
            f" FROM experiments{where}"
            " ORDER BY app, scheme, device, ecc, seed, content_key",
            params,
        )
        self.hub.inc(ANALYTICS_QUERIES)
        return [dict(r) for r in cur.fetchall()]

    def row(self, content_key: str) -> Optional[dict]:
        """One full experiment row (report blob decoded), or None."""
        cur = self._conn.execute(
            "SELECT * FROM experiments WHERE content_key = ?",
            (content_key,),
        )
        found = cur.fetchone()
        self.hub.inc(ANALYTICS_QUERIES)
        if found is None:
            return None
        doc = dict(found)
        doc["report"] = json.loads(doc["report"])
        doc["tenants"] = [
            dict(t) for t in self._conn.execute(
                "SELECT name, tenant_class, workload, requests_served,"
                " requests_dropped, activations, slowdown"
                " FROM tenant_rows WHERE content_key = ? ORDER BY name",
                (content_key,),
            ).fetchall()
        ]
        return doc

    def tenant_rows(self) -> list[dict]:
        """All per-tenant rows joined with their group columns."""
        cur = self._conn.execute(
            "SELECT t.content_key, t.name, t.tenant_class, t.workload,"
            " t.requests_served, t.requests_dropped, t.activations,"
            " t.slowdown, e.app, e.scheme, e.device, e.ecc, e.seed,"
            " e.jain_fairness"
            " FROM tenant_rows t JOIN experiments e"
            " ON t.content_key = e.content_key"
            " ORDER BY e.app, e.scheme, e.device, e.ecc, e.seed, t.name",
        )
        return [dict(r) for r in cur.fetchall()]

    def failures(self) -> list[dict]:
        """All ingested failure rows, deterministically ordered."""
        cur = self._conn.execute(
            "SELECT app, label, content_key, error_type, message,"
            " attempts, elapsed, manifest FROM failures"
            " ORDER BY manifest, app, label",
        )
        return [dict(r) for r in cur.fetchall()]

    def bench_entries(self, bench: Optional[str] = None) -> list[dict]:
        """Bench history entries (decoded), ordered by (bench, time)."""
        if bench is None:
            cur = self._conn.execute(
                "SELECT bench, timestamp, entry FROM bench_history"
                " ORDER BY bench, timestamp",
            )
        else:
            cur = self._conn.execute(
                "SELECT bench, timestamp, entry FROM bench_history"
                " WHERE bench = ? ORDER BY timestamp",
                (bench,),
            )
        return [
            {"bench": r["bench"], **json.loads(r["entry"])}
            for r in cur.fetchall()
        ]

    def counts(self) -> dict:
        """Row counts per table (for ``report ingest`` summaries)."""
        out = {}
        for table in ("experiments", "tenant_rows", "failures",
                      "bench_history"):
            cur = self._conn.execute(f"SELECT COUNT(*) AS n FROM {table}")
            out[table] = int(cur.fetchone()["n"])
        return out


def ingest_sources(
    warehouse: Warehouse,
    *,
    cache: Optional["ResultCache"] = None,
    failure_manifests: Iterable[str | Path] = (),
    bench_files: Iterable[str | Path] = (),
) -> dict:
    """Convenience driver over the three ingest streams.

    Returns ``{"experiments": n, "failures": n, "bench": n}`` counts of
    rows upserted this call.
    """
    ingested = {"experiments": 0, "failures": 0, "bench": 0}
    if cache is not None:
        ingested["experiments"] = warehouse.ingest_cache(cache)
    for manifest in failure_manifests:
        ingested["failures"] += warehouse.ingest_failures(manifest)
    for bench in bench_files:
        ingested["bench"] += warehouse.ingest_bench(bench)
    return ingested
