"""Experiment results warehouse: ingest, statistics, reports, gates.

The analytics subsystem turns a sweep's scattered outputs — cached
:class:`~repro.sim.report.SimReport` blobs, failure manifests, bench
histories — into one queryable sqlite store
(:class:`~repro.analytics.warehouse.Warehouse`), an aggregate facade
with seed statistics
(:class:`~repro.analytics.results.ExperimentResults`), templated
markdown/HTML reports (:mod:`repro.analytics.report`), and a
snapshot-pinned regression gate. The ``repro-harness report``
subcommand and the service's ``/v1/experiments`` endpoints are thin
shells over these four pieces.
"""

from repro.analytics.results import (
    ExperimentResults,
    Regression,
    load_snapshot,
)
from repro.analytics.stats import (
    BootstrapCI,
    MannWhitneyResult,
    bootstrap_ci,
    holm_adjust,
    mann_whitney_u,
)
from repro.analytics.warehouse import Warehouse, ingest_sources

__all__ = [
    "BootstrapCI",
    "ExperimentResults",
    "MannWhitneyResult",
    "Regression",
    "Warehouse",
    "bootstrap_ci",
    "holm_adjust",
    "ingest_sources",
    "load_snapshot",
    "mann_whitney_u",
]
