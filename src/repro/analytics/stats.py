"""Deterministic, pure-python statistics for the results warehouse.

Two tools back every aggregate the warehouse reports:

* **percentile-bootstrap confidence intervals** for the mean of a
  per-seed sample — the paper's headline numbers (row-energy savings,
  application error, FIT) are means over seeds, and a CI across seeds is
  what turns a single-run point estimate into a defensible claim;
* the **Mann–Whitney U test** for the regression gate — a rank test
  needs no normality assumption, which per-seed simulator metrics
  (bounded, often skewed, occasionally bimodal) would violate.

Everything here is deterministic by construction: the bootstrap drives
an explicitly seeded :class:`random.Random`, and the U test's p-value is
exact (a small dynamic program over the U distribution) whenever the
samples are tie-free and small, falling back to the tie-corrected
normal approximation otherwise. No numpy, no scipy — the service tier
must be able to serve these numbers from a bare stdlib container.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

#: Default bootstrap resample count: small enough to stay instant on a
#: handful of seeds, large enough that the 2.5th/97.5th percentiles are
#: stable to ~1% of the sample spread.
DEFAULT_RESAMPLES = 1000

#: Fixed bootstrap seed — CIs must be identical across runs, hosts, and
#: the CLI/service split, or `report diff` would flag phantom drift.
DEFAULT_BOOTSTRAP_SEED = 0x5EEDED

#: Largest ``n1 * n2`` for which the exact U distribution is computed;
#: beyond it (or with ties) the normal approximation takes over.
EXACT_U_LIMIT = 400


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sample."""
    if not values:
        raise ValueError("mean of an empty sample")
    return math.fsum(values) / len(values)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample.

    ``q`` is a fraction in [0, 1]. Matches numpy's default
    ``interpolation='linear'`` so the numbers are comparable to any
    offline analysis a reader reproduces with a dataframe.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction out of range: {q}")
    position = q * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(sorted_values[lower])
    weight = position - lower
    return (
        sorted_values[lower] * (1.0 - weight)
        + sorted_values[upper] * weight
    )


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile-bootstrap confidence interval for the mean."""

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    def to_dict(self) -> dict:
        return {
            "mean": self.mean,
            "low": self.low,
            "high": self.high,
            "confidence": self.confidence,
            "n": self.n,
        }

    def contains(self, other: "BootstrapCI") -> bool:
        """Whether this interval fully contains ``other``."""
        return self.low <= other.low and other.high <= self.high


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = DEFAULT_BOOTSTRAP_SEED,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of ``values``.

    Deterministic: the resample plan is a pure function of ``seed``,
    ``len(values)``, and ``resamples`` — and *independent* of
    ``confidence``, so intervals at increasing confidence levels are
    nested by construction (the property test relies on this: the same
    sorted resample-mean list is cut at wider percentiles).

    Degenerate cases: a single observation yields the zero-width
    interval ``[v, v]`` (there is nothing to resample), and an empty
    sample raises ``ValueError``.
    """
    if not values:
        raise ValueError("bootstrap_ci of an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1: {resamples}")
    xs = [float(v) for v in values]
    point = mean(xs)
    if len(xs) == 1 or min(xs) == max(xs):
        return BootstrapCI(
            mean=point, low=point, high=point,
            confidence=confidence, n=len(xs),
        )
    rng = random.Random(seed)
    n = len(xs)
    resample_means = sorted(
        math.fsum(xs[rng.randrange(n)] for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        mean=point,
        low=percentile(resample_means, alpha),
        high=percentile(resample_means, 1.0 - alpha),
        confidence=confidence,
        n=n,
    )


# ----------------------------------------------------------------------
# Mann–Whitney U
# ----------------------------------------------------------------------
def rankdata(values: Sequence[float]) -> list[float]:
    """Midranks (average ranks for ties), 1-based, in input order."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        i = j + 1
    return ranks


def _u_counts(n1: int, n2: int) -> list[int]:
    """``counts[u]`` = orderings of ``n1`` a's and ``n2`` b's with U=u.

    The recurrence conditions on the last element of the merged
    sequence: an ``a`` in last place is preceded by all ``j`` b's
    (adding ``j`` to U), a ``b`` adds nothing::

        g(i, j, u) = g(i-1, j, u-j) + g(i, j-1, u)

    ``sum(counts)`` is ``C(n1+n2, n1)``; the distribution is symmetric
    about ``n1*n2/2``.
    """
    size = n1 * n2 + 1
    # rows[j][u] holds g(i, j, u) for the current i.
    rows = [[0] * size for _ in range(n2 + 1)]
    for j in range(n2 + 1):
        rows[j][0] = 1  # i = 0: U is necessarily 0
    for _i in range(1, n1 + 1):
        new = [[0] * size for _ in range(n2 + 1)]
        new[0][0] = 1  # j = 0: U is necessarily 0
        for j in range(1, n2 + 1):
            old = rows[j]
            left = new[j - 1]
            cur = new[j]
            for u in range(size):
                total = left[u]
                if u >= j:
                    total += old[u - j]
                cur[u] = total
        rows = new
    return rows[n2]


def _normal_sf(z: float) -> float:
    """Standard-normal survival function via ``math.erfc``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sided Mann–Whitney U test."""

    u1: float
    u2: float
    p_value: float
    #: ``"exact"`` (tie-free small samples) or ``"normal"``.
    method: str
    n1: int
    n2: int

    @property
    def u(self) -> float:
        """The conventional test statistic ``min(U1, U2)``."""
        return min(self.u1, self.u2)

    def to_dict(self) -> dict:
        return {
            "u1": self.u1,
            "u2": self.u2,
            "u": self.u,
            "p_value": self.p_value,
            "method": self.method,
            "n1": self.n1,
            "n2": self.n2,
        }


def mann_whitney_u(
    a: Sequence[float],
    b: Sequence[float],
    *,
    exact_limit: int = EXACT_U_LIMIT,
) -> MannWhitneyResult:
    """Two-sided Mann–Whitney U test of ``a`` vs ``b``.

    Tie-free samples with ``n1 * n2 <= exact_limit`` get the exact
    p-value (full U distribution via :func:`_u_counts`); everything
    else uses the tie-corrected normal approximation with continuity
    correction. Both paths are deterministic.
    """
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u requires non-empty samples")
    combined = [float(v) for v in a] + [float(v) for v in b]
    ranks = rankdata(combined)
    r1 = math.fsum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    has_ties = len(set(combined)) != len(combined)
    if not has_ties and n1 * n2 <= exact_limit:
        counts = _u_counts(n1, n2)
        total = math.fsum(counts)
        u_min = int(round(min(u1, u2)))
        cdf = math.fsum(counts[: u_min + 1]) / total
        return MannWhitneyResult(
            u1=u1, u2=u2, p_value=min(1.0, 2.0 * cdf),
            method="exact", n1=n1, n2=n2,
        )
    n = n1 + n2
    tie_term = 0.0
    if has_ties:
        seen: dict[float, int] = {}
        for v in combined:
            seen[v] = seen.get(v, 0) + 1
        tie_term = math.fsum(t ** 3 - t for t in seen.values())
    variance = (n1 * n2 / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        # Every observation identical: no evidence of any shift.
        return MannWhitneyResult(
            u1=u1, u2=u2, p_value=1.0, method="normal", n1=n1, n2=n2,
        )
    mu = n1 * n2 / 2.0
    z = (abs(u1 - mu) - 0.5) / math.sqrt(variance)
    p = min(1.0, 2.0 * _normal_sf(max(0.0, z)))
    return MannWhitneyResult(
        u1=u1, u2=u2, p_value=p, method="normal", n1=n1, n2=n2,
    )


def holm_adjust(p_values: Sequence[float]) -> list[float]:
    """Holm step-down adjustment for a family of p-values.

    The regression gate tests (groups × metrics) hypotheses at once;
    without an adjustment a 40-cell sweep would flag a phantom
    regression every few runs at alpha = 0.05 through sheer multiplicity.
    """
    m = len(p_values)
    if m == 0:
        return []
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, idx in enumerate(order):
        value = min(1.0, (m - rank) * p_values[idx])
        running = max(running, value)
        adjusted[idx] = running
    return adjusted
