"""Templated sweep reports: markdown and self-contained HTML.

Both renderers consume the :meth:`ExperimentResults.summary` document —
never the warehouse directly — so anything a report shows is also what
``GET /v1/experiments/summary`` serves. Templates are stdlib
:class:`string.Template` (no templating dependency), and the HTML is a
single self-contained file (inline CSS, no scripts, no external
fetches) so CI can attach it as an artifact and it renders anywhere.

The table layout mirrors the paper's aggregate figures: one table per
app, schemes as rows, and the headline columns — row-energy savings vs
baseline, application error, FIT, IPC — each as ``mean [low, high]``
bootstrap intervals across seeds.
"""

from __future__ import annotations

from string import Template
from typing import Optional

_MD_HEADER = Template(
    """# Sweep report

- experiments: **$n_experiments** across **$n_groups** groups\
 (baseline scheme: `$baseline`)
- intervals: **$confidence_pct% bootstrap CIs** across seeds\
 ($resamples resamples)
- ingested failures: $n_failures
"""
)

_MD_TABLE_HEADER = Template(
    """
## $app

| scheme | device | ecc | seeds | row-energy savings | app error | FIT | IPC |
|---|---|---|---|---|---|---|---|
"""
)

_MD_ROW = Template(
    "| $scheme | $device | $ecc | $n "
    "| $savings | $app_error | $fit | $ipc |\n"
)

_HTML_PAGE = Template(
    """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Sweep report</title>
<style>
  body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
         margin: 2rem auto; max-width: 72rem; color: #1c2330; }
  h1 { border-bottom: 2px solid #2b6cb0; padding-bottom: .3rem; }
  h2 { margin-top: 2rem; color: #2b6cb0; }
  table { border-collapse: collapse; width: 100%; margin: .75rem 0; }
  th, td { border: 1px solid #d4dae3; padding: .35rem .6rem;
           text-align: right; font-variant-numeric: tabular-nums; }
  th { background: #eef2f7; }
  td:first-child, th:first-child { text-align: left; }
  .meta { color: #5a6472; font-size: .9rem; }
  .ci { color: #5a6472; font-size: .85em; }
  .good { color: #1a7f37; } .bad { color: #b42318; }
  .na { color: #9aa3af; }
</style>
</head>
<body>
<h1>Sweep report</h1>
<p class="meta">$n_experiments experiments / $n_groups groups
&middot; baseline scheme <code>$baseline</code>
&middot; $confidence_pct% bootstrap CIs across seeds
($resamples resamples)
&middot; $n_failures ingested failures</p>
$tenants
$tables
</body>
</html>
"""
)

_HTML_TABLE = Template(
    """<h2>$app</h2>
<table>
<tr><th>scheme</th><th>device</th><th>ecc</th><th>seeds</th>
<th>row-energy savings</th><th>app error</th><th>FIT</th><th>IPC</th></tr>
$rows</table>
"""
)

_HTML_ROW = Template(
    "<tr><td>$scheme</td><td>$device</td><td>$ecc</td><td>$n</td>"
    "<td>$savings</td><td>$app_error</td><td>$fit</td><td>$ipc</td></tr>\n"
)

_HTML_TENANTS = Template(
    """<h2>Multi-tenant fairness</h2>
<p class="meta">$n_rows tenant rows &middot; Jain fairness $jain</p>
$classes
"""
)


def _fmt(value: Optional[float], *, pct: bool = False, digits: int = 3) -> str:
    if value is None:
        return "&mdash;"
    if pct:
        return f"{value * 100:.1f}%"
    return f"{value:.{digits}g}"


def _fmt_ci(ci: Optional[dict], *, pct: bool = False, digits: int = 3) -> str:
    """``mean [low, high]`` or an em-dash when the metric is absent."""
    if ci is None:
        return "&mdash;"
    m = _fmt(ci["mean"], pct=pct, digits=digits)
    lo = _fmt(ci["low"], pct=pct, digits=digits)
    hi = _fmt(ci["high"], pct=pct, digits=digits)
    return f"{m} [{lo}, {hi}]"


def _group_cells(group: dict) -> dict:
    metrics = group.get("metrics", {})
    return {
        "scheme": group["scheme"],
        "device": group.get("device") or "&mdash;",
        "ecc": group.get("ecc") or "&mdash;",
        "n": group["n"],
        "savings": _fmt_ci(group.get("row_energy_savings"), pct=True),
        "app_error": _fmt_ci(metrics.get("app_error"), pct=True),
        "fit": _fmt_ci(metrics.get("fit")),
        "ipc": _fmt_ci(metrics.get("ipc")),
    }


def _by_app(summary: dict) -> dict[str, list[dict]]:
    apps: dict[str, list[dict]] = {}
    for group in summary.get("groups", []):
        apps.setdefault(group["app"], []).append(group)
    return apps  # summary groups are already deterministically sorted


def _header_fields(summary: dict) -> dict:
    return {
        "n_experiments": summary.get("n_experiments", 0),
        "n_groups": summary.get("n_groups", 0),
        "n_failures": summary.get("n_failures", 0),
        "baseline": summary.get("baseline_scheme", "Baseline"),
        "confidence_pct": (
            f"{summary.get('confidence', 0.95) * 100:g}"
        ),
        "resamples": summary.get("resamples", 0),
    }


def render_markdown(summary: dict) -> str:
    """Render the summary document as GitHub-flavored markdown."""
    parts = [_MD_HEADER.substitute(_header_fields(summary))]
    for app, groups in _by_app(summary).items():
        parts.append(_MD_TABLE_HEADER.substitute(app=app))
        for group in groups:
            cells = _group_cells(group)
            # Markdown gets plain dashes, not HTML entities.
            cells = {
                k: (str(v).replace("&mdash;", "—") if isinstance(v, str)
                    else v)
                for k, v in cells.items()
            }
            parts.append(_MD_ROW.substitute(cells))
    tenants = summary.get("tenants", {})
    if tenants.get("n_rows"):
        parts.append("\n## Multi-tenant fairness\n\n")
        jain = _fmt_ci(tenants.get("jain_fairness")).replace("&mdash;", "—")
        parts.append(
            f"- tenant rows: {tenants['n_rows']}\n"
            f"- Jain fairness: {jain}\n"
        )
        for cls, ci in tenants.get("by_class", {}).items():
            slow = _fmt_ci(ci).replace("&mdash;", "—")
            parts.append(f"- `{cls}` slowdown: {slow}\n")
    return "".join(parts)


def render_html(summary: dict) -> str:
    """Render the summary document as one self-contained HTML page."""
    tables = []
    for app, groups in _by_app(summary).items():
        rows = "".join(
            _HTML_ROW.substitute(_group_cells(group)) for group in groups
        )
        tables.append(_HTML_TABLE.substitute(app=app, rows=rows))
    tenants = summary.get("tenants", {})
    tenants_html = ""
    if tenants.get("n_rows"):
        classes = "".join(
            f"<p class=\"meta\"><code>{cls}</code> slowdown "
            f"{_fmt_ci(ci)}</p>\n"
            for cls, ci in tenants.get("by_class", {}).items()
        )
        tenants_html = _HTML_TENANTS.substitute(
            n_rows=tenants["n_rows"],
            jain=_fmt_ci(tenants.get("jain_fairness")),
            classes=classes,
        )
    return _HTML_PAGE.substitute(
        tables="".join(tables),
        tenants=tenants_html,
        **_header_fields(summary),
    )


def render_diff_markdown(regressions: list[dict]) -> str:
    """Human-readable verdict block for ``report diff``."""
    if not regressions:
        return "No significant regressions against the baseline.\n"
    lines = [
        f"{len(regressions)} significant regression(s) against the"
        " baseline:\n\n",
        "| app | scheme | device | ecc | metric | baseline | current"
        " | delta | p | method |\n",
        "|---|---|---|---|---|---|---|---|---|---|\n",
    ]
    for reg in regressions:
        p = "—" if reg["p_value"] is None else f"{reg['p_value']:.3g}"
        lines.append(
            f"| {reg['app']} | {reg['scheme']}"
            f" | {reg['device'] or '—'} | {reg['ecc'] or '—'}"
            f" | {reg['metric']} | {reg['baseline_mean']:.4g}"
            f" | {reg['current_mean']:.4g}"
            f" | {reg['rel_delta'] * 100:+.1f}% | {p}"
            f" | {reg['method']} |\n"
        )
    return "".join(lines)
