"""GPU frontend: warps, SM array, interconnect."""

from repro.gpu.frontend import GPUFrontend
from repro.gpu.interconnect import Crossbar
from repro.gpu.warp import Access, Warp, WarpOp, WarpState

__all__ = ["Access", "Crossbar", "GPUFrontend", "Warp", "WarpOp", "WarpState"]
