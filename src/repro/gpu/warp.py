"""Warp-level execution model.

A warp alternates *compute* phases and *memory* phases, the granularity at
which GPGPU-Sim-class simulators model latency hiding: a warp retires a
batch of instructions, issues its coalesced global accesses, and blocks
until every load of the batch has returned. The SM hides memory latency
by keeping many warps in flight — exactly the property the paper's DMS
exploits ("GPUs hide long memory access latencies by spawning thousands
of concurrent threads").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence


@dataclass(frozen=True, slots=True)
class Access:
    """One coalesced 128-byte global access issued by a warp."""

    addr: int
    is_write: bool = False
    approximable: bool = False
    #: True when a store writes the whole line (no fetch-on-write needed).
    full_line: bool = True
    #: Opaque workload token for approximation replay.
    tag: Any = None


@dataclass(frozen=True, slots=True)
class WarpOp:
    """One compute-then-memory step of a warp.

    ``compute_cycles`` are *core* cycles spent before the accesses issue;
    ``instructions`` is the number of warp instructions the op retires
    (used for IPC accounting).
    """

    compute_cycles: float
    instructions: int
    accesses: tuple[Access, ...] = ()


class WarpState(enum.Enum):
    """Lifecycle of a warp."""

    COMPUTING = "computing"
    WAITING_MEM = "waiting_mem"
    FINISHED = "finished"


class Warp:
    """Runtime state of one warp executing a stream of :class:`WarpOp`."""

    __slots__ = (
        "warp_id",
        "sm_id",
        "tenant_id",
        "_ops",
        "state",
        "outstanding_loads",
        "instructions_retired",
        "ops_retired",
        "current_op",
    )

    def __init__(
        self, warp_id: int, sm_id: int, ops: Sequence[WarpOp] | Iterator[WarpOp]
    ) -> None:
        self.warp_id = warp_id
        self.sm_id = sm_id
        #: Owning tenant in a multi-tenant mix (0 = sole tenant).
        self.tenant_id = 0
        self._ops = iter(ops)
        self.state = WarpState.COMPUTING
        self.outstanding_loads = 0
        self.instructions_retired = 0
        self.ops_retired = 0
        self.current_op: Optional[WarpOp] = None

    def next_op(self) -> Optional[WarpOp]:
        """Advance to the next op; None when the stream is exhausted.

        Exhaustion does not finish the warp by itself: with memory-level
        parallelism, earlier ops may still await replies — the frontend
        marks the warp FINISHED once they drain.
        """
        self.current_op = next(self._ops, None)
        return self.current_op

    def retire_current(self) -> None:
        """Account the just-completed op."""
        assert self.current_op is not None
        self.instructions_retired += self.current_op.instructions
        self.ops_retired += 1

    @property
    def finished(self) -> bool:
        """Whether the warp has drained its op stream."""
        return self.state is WarpState.FINISHED
