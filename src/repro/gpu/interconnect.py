"""Crossbar interconnect between SMs and memory partitions.

Table I: one crossbar per direction (30 SMs x 6 MCs) at 1400 MHz. We
model each direction as a fixed traversal latency plus an optional
per-partition injection serialisation (a packet occupies the output port
for ``port_cycles``), which captures first-order crossbar contention
without per-flit simulation.
"""

from __future__ import annotations

from repro.sim.engine import Engine


class Crossbar:
    """Latency + output-port serialisation model of one direction."""

    def __init__(
        self,
        engine: Engine,
        num_ports: int,
        *,
        latency_mem_cycles: float,
        port_cycles: float = 1.0,
    ) -> None:
        self._engine = engine
        self._latency = latency_mem_cycles
        self._port_cycles = port_cycles
        self._port_free = [0.0] * num_ports
        self.packets = 0
        self.total_queuing = 0.0

    def deliver(self, port: int, fn) -> None:
        """Send a packet toward ``port``; ``fn`` runs on arrival."""
        now = self._engine.now
        start = max(now, self._port_free[port])
        self._port_free[port] = start + self._port_cycles
        self.total_queuing += start - now
        self.packets += 1
        self._engine.at(start + self._latency, fn)

    @property
    def mean_queuing(self) -> float:
        """Average port-queuing delay per packet (memory cycles)."""
        return self.total_queuing / self.packets if self.packets else 0.0
