"""Event-driven GPU frontend: SM array executing warp op streams.

Simplifications relative to a full GPGPU-Sim core model (DESIGN.md §5):
issue-port contention inside an SM is folded into each op's
``compute_cycles`` (workload generators calibrate it), and warps block on
all loads of an op (memory barrier per op). Latency tolerance — the
property DMS exploits — emerges naturally: an SM with many concurrent
warps keeps retiring instructions while some warps wait on DRAM.

``GPUConfig.max_outstanding_ops_per_warp`` relaxes the per-op barrier:
with M > 1 a warp may start computing/issuing its next op while up to
M earlier ops' loads are still in flight (scoreboard-style memory-level
parallelism). Load replies are not op-tagged by the memory system, so
they retire the warp's *oldest* incomplete op — a FIFO attribution that
conserves totals and keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Sequence

from repro.config.gpu import GPUConfig
from repro.errors import SimulationError, WorkloadError
from repro.gpu.warp import Access, Warp, WarpOp, WarpState
from repro.sim.engine import Engine

#: mem_access_fn(access, warp) — route one access into the memory system.
MemAccessFn = Callable[[Access, Warp], None]


class _WarpRuntime:
    """Frontend-private pipeline state of one warp."""

    __slots__ = ("pending", "drained", "stalled")

    def __init__(self) -> None:
        #: FIFO of [op, remaining_loads] awaiting memory completion.
        self.pending: Deque[list] = deque()
        #: The op stream is exhausted; finish once pending drains.
        self.drained = False
        #: Issue stopped because the MLP window is full.
        self.stalled = False


class GPUFrontend:
    """The SM array: schedules warps and accounts instructions."""

    def __init__(
        self,
        engine: Engine,
        config: GPUConfig,
        warp_streams: Sequence[Sequence[WarpOp]],
        mem_access_fn: MemAccessFn,
        stream_tenants: Optional[Sequence[int]] = None,
    ) -> None:
        if not warp_streams:
            raise WorkloadError("workload produced no warp streams")
        if stream_tenants is not None and (
            len(stream_tenants) != len(warp_streams)
        ):
            raise WorkloadError(
                "stream_tenants must align 1:1 with warp_streams "
                f"({len(stream_tenants)} vs {len(warp_streams)})"
            )
        self._engine = engine
        self._config = config
        self._mem_access = mem_access_fn
        self._mlp = max(1, config.max_outstanding_ops_per_warp)
        self.warps: list[Warp] = []
        self._rt: dict[int, _WarpRuntime] = {}
        self._sm_slots: list[int] = [0] * config.num_sms
        self._deferred: list[Warp] = []  # waiting for a free SM slot
        for i, ops in enumerate(warp_streams):
            sm = i % config.num_sms
            warp = Warp(warp_id=i, sm_id=sm, ops=ops)
            if stream_tenants is not None:
                warp.tenant_id = stream_tenants[i]
            self.warps.append(warp)
            self._rt[i] = _WarpRuntime()
        self.finished_warps = 0
        self.finish_time_mem: float = 0.0
        #: Per-tenant finish time (memory cycles), keyed by tenant_id;
        #: populated only when ``stream_tenants`` was given.
        self.tenant_finish_time: dict[int, float] = {}
        self._track_tenants = stream_tenants is not None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch warps (respecting the per-SM warp limit)."""
        if self._started:
            raise SimulationError("frontend already started")
        self._started = True
        limit = self._config.max_warps_per_sm
        for warp in self.warps:
            if self._sm_slots[warp.sm_id] < limit:
                self._sm_slots[warp.sm_id] += 1
                self._advance(warp)
            else:
                self._deferred.append(warp)

    # ------------------------------------------------------------------
    def _advance(self, warp: Warp) -> None:
        """Fetch the warp's next op and schedule its compute phase."""
        rt = self._rt[warp.warp_id]
        op = warp.next_op()
        if op is None:
            if rt.pending:
                rt.drained = True
            else:
                self._finish(warp)
            return
        warp.state = WarpState.COMPUTING
        delay = self._config.core_to_mem(op.compute_cycles)
        self._engine.after(delay, lambda: self._issue(warp, op))

    def _issue(self, warp: Warp, op: WarpOp) -> None:
        rt = self._rt[warp.warp_id]
        loads = sum(1 for a in op.accesses if not a.is_write)
        if loads:
            rt.pending.append([op, loads])
            warp.outstanding_loads += loads
            warp.state = WarpState.WAITING_MEM
        for access in op.accesses:
            self._mem_access(access, warp)
        if not loads:
            self._retire_op(warp, op)
            self._advance(warp)
            return
        if len(rt.pending) < self._mlp:
            self._advance(warp)
        else:
            rt.stalled = True

    def on_load_reply(self, warp: Warp) -> None:
        """A load of the warp's oldest incomplete op returned."""
        rt = self._rt[warp.warp_id]
        if warp.outstanding_loads <= 0 or not rt.pending:
            raise SimulationError(
                f"warp {warp.warp_id} received an unexpected load reply"
            )
        warp.outstanding_loads -= 1
        oldest = rt.pending[0]
        oldest[1] -= 1
        if oldest[1] > 0:
            return
        rt.pending.popleft()
        self._retire_op(warp, oldest[0])
        if rt.stalled:
            rt.stalled = False
            self._advance(warp)
        elif rt.drained and not rt.pending:
            self._finish(warp)

    def _retire_op(self, warp: Warp, op: WarpOp) -> None:
        warp.instructions_retired += op.instructions
        warp.ops_retired += 1

    def _finish(self, warp: Warp) -> None:
        warp.state = WarpState.FINISHED
        self.finished_warps += 1
        self.finish_time_mem = max(self.finish_time_mem, self._engine.now)
        if self._track_tenants:
            tid = warp.tenant_id
            if self._engine.now > self.tenant_finish_time.get(tid, 0.0):
                self.tenant_finish_time[tid] = self._engine.now
        # Hand the SM slot to a deferred warp, if any is waiting.
        if self._deferred:
            nxt = self._deferred.pop(0)
            nxt.sm_id = warp.sm_id
            self._advance(nxt)
        else:
            self._sm_slots[warp.sm_id] -= 1

    # ------------------------------------------------------------------
    @property
    def all_finished(self) -> bool:
        """Whether every warp has drained its op stream."""
        return self.finished_warps == len(self.warps)

    @property
    def total_instructions(self) -> int:
        """Instructions retired across all warps."""
        return sum(w.instructions_retired for w in self.warps)

    def tenant_instructions(self) -> dict[int, int]:
        """Instructions retired per tenant_id (multi-tenant accounting)."""
        totals: dict[int, int] = {}
        for w in self.warps:
            totals[w.tenant_id] = (
                totals.get(w.tenant_id, 0) + w.instructions_retired
            )
        return totals

    def unfinished(self) -> list[Warp]:
        """Warps that have not finished (deadlock diagnostics)."""
        return [w for w in self.warps if not w.finished]
