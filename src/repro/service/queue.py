"""Bounded priority job queue with coalescing and cache-first admission.

Admission order for every submission (:meth:`JobQueue.admit`):

1. **Cache first** — the job's content key is probed against the shared
   :class:`~repro.harness.cache.ResultCache`; a warm hit completes the
   job immediately without ever touching the worker pool.
2. **Coalesce** — if an identical spec (same content key) is already
   queued or running, the new job attaches to it as a *follower*: one
   simulation, N answers. This is what makes a thundering herd of
   identical sweep cells cost one cell.
3. **Enqueue** — otherwise the job enters the bounded priority heap
   (higher :attr:`~repro.service.jobs.Job.priority` first, FIFO within a
   priority). A full heap raises :class:`QueueFullError`, which the HTTP
   layer maps to ``429 Too Many Requests`` plus a ``Retry-After`` hint
   derived from observed job durations — backpressure, not buffering.

All methods must run on the daemon's event loop (single-threaded
admission makes the coalescing index race-free by construction); the
simulations themselves run in executor threads.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Optional

from repro.errors import JobStateError, ServiceBusyError
from repro.harness.cache import ResultCache
from repro.service.jobs import Job, JobState
from repro.telemetry.hub import (
    NULL_HUB,
    SERVICE_CACHE_HITS,
    SERVICE_COALESCED,
    SERVICE_REJECTED,
)

#: Admission outcomes returned by :meth:`JobQueue.admit`.
ADMIT_CACHED = "cached"
ADMIT_COALESCED = "coalesced"
ADMIT_QUEUED = "queued"


class QueueFullError(ServiceBusyError):
    """The bounded job queue rejected a submission (maps to HTTP 429)."""


class JobQueue:
    """Priority heap + coalescing index + cache-first admission."""

    def __init__(
        self,
        *,
        maxsize: int = 64,
        cache: Optional[ResultCache] = None,
        metrics=NULL_HUB,
    ) -> None:
        if maxsize < 1:
            raise ValueError("queue maxsize must be >= 1")
        self.maxsize = maxsize
        self.cache = cache
        self.metrics = metrics
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0
        self._cond = asyncio.Condition()
        self._closed = False
        #: key -> primary job currently queued or running.
        self._inflight: dict[str, Job] = {}
        #: EWMA of observed simulation durations (Retry-After hint).
        self._avg_duration = 2.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Queued (not yet running) jobs, cancelled entries excluded."""
        return sum(
            1 for _, _, job in self._heap if job.state is JobState.QUEUED
        )

    @property
    def inflight_keys(self) -> int:
        """Distinct content keys currently queued or running."""
        return len(self._inflight)

    def note_duration(self, seconds: float) -> None:
        """Feed one observed job duration into the Retry-After EWMA."""
        self._avg_duration = 0.8 * self._avg_duration + 0.2 * max(
            seconds, 0.0
        )

    def retry_after_hint(self) -> float:
        """Suggested client backoff when the queue is full: roughly one
        queue-drain time, clamped to a polite [1s, 60s]."""
        return min(60.0, max(1.0, self._avg_duration * (len(self) + 1)))

    # ------------------------------------------------------------------
    async def admit(self, job: Job) -> str:
        """Admit a submission; returns one of the ``ADMIT_*`` outcomes.

        Cache-hit jobs come back already ``done`` (report attached);
        coalesced jobs stay ``queued`` with
        :attr:`~repro.service.jobs.Job.coalesced_into` set; otherwise the
        job enters the heap. Raises :class:`QueueFullError` with a
        ``retry_after`` hint when the bounded heap is full.
        """
        if self.cache is not None:
            report = self.cache.load(job.key)
            if report is not None:
                job.cached = True
                job.report = report
                job.transition(JobState.DONE)
                self.metrics.inc(SERVICE_CACHE_HITS)
                return ADMIT_CACHED
        primary = self._inflight.get(job.key)
        if primary is not None and not primary.terminal:
            job.coalesced_into = primary.id
            primary.followers.append(job)
            self.metrics.inc(SERVICE_COALESCED)
            return ADMIT_COALESCED
        if len(self) >= self.maxsize:
            self.metrics.inc(SERVICE_REJECTED)
            raise QueueFullError(
                f"job queue full ({self.maxsize} queued)",
                retry_after=self.retry_after_hint(),
            )
        async with self._cond:
            self._seq += 1
            heapq.heappush(self._heap, (-job.priority, self._seq, job))
            self._inflight[job.key] = job
            self._cond.notify()
        return ADMIT_QUEUED

    # ------------------------------------------------------------------
    async def get(self) -> Optional[Job]:
        """Pop the highest-priority queued job; ``None`` once closed.

        Entries cancelled while queued are discarded lazily here.
        """
        async with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state is JobState.QUEUED:
                        return job
                if self._closed:
                    return None
                await self._cond.wait()

    def release(self, job: Job) -> None:
        """Drop a finished primary from the coalescing index.

        Called by the daemon *after* the job (and its followers) reached
        a terminal state, so later identical submissions re-probe the
        cache instead of attaching to a corpse.
        """
        current = self._inflight.get(job.key)
        if current is job:
            del self._inflight[job.key]

    # ------------------------------------------------------------------
    async def cancel(self, job: Job) -> Optional[Job]:
        """Cancel a *queued* job; returns a promoted follower, if any.

        A queued primary with followers does not waste their wait: the
        oldest follower is promoted to primary (re-enqueued under its
        own priority) and inherits the remaining followers. Running or
        terminal jobs are the daemon's problem, not the queue's.
        """
        if job.state is not JobState.QUEUED:
            raise JobStateError(
                f"job {job.id} is {job.state.value}; only queued jobs "
                "can be cancelled"
            )
        job.transition(JobState.CANCELLED)
        promoted: Optional[Job] = None
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
            if job.followers:
                promoted = job.followers.pop(0)
                promoted.coalesced_into = None
                promoted.followers = job.followers
                job.followers = []
                async with self._cond:
                    self._seq += 1
                    heapq.heappush(
                        self._heap,
                        (-promoted.priority, self._seq, promoted),
                    )
                    self._inflight[promoted.key] = promoted
                    self._cond.notify()
        return promoted

    async def close(self) -> None:
        """Stop handing out jobs: every blocked/future ``get`` yields
        ``None``. Already-queued entries stay in the heap (the daemon
        decides whether to drain them before calling this)."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()
