"""Simulation-as-a-service: the long-lived serving surface of the repo.

Everything below this package turns one-shot CLI experiments into a
multi-tenant daemon (``repro-harness serve``) that accepts JSON-encoded
:class:`~repro.sim.spec.SimSpec` jobs over HTTP:

* :mod:`repro.service.jobs` — the job lifecycle state machine
  (``queued -> running -> done|failed|cancelled``) and the JSONL journal
  that lets a restarted daemon recover its queue and history;
* :mod:`repro.service.queue` — the bounded priority queue with
  cache-first admission, request coalescing (concurrent identical specs
  attach to one in-flight simulation), and 429 backpressure;
* :mod:`repro.service.workers` — the supervised worker tier: N
  persistent simulator *processes* (PR 6 :class:`~repro.harness.pool.
  WarmPool`) with heartbeats, per-job deadlines, and in-place respawn,
  so a crashing or hung simulation fails only its own job;
* :mod:`repro.service.breaker` — the per-content-key circuit breaker
  that quarantines poison specs with a structured 422 instead of
  burning workers on them;
* :mod:`repro.service.stream` — crash-safe SSE fan-out: bounded
  per-job event rings with monotonically increasing ids and
  ``Last-Event-ID`` reconnect replay;
* :mod:`repro.service.server` — the stdlib-only asyncio HTTP daemon:
  ``POST /v1/jobs``, ``GET /v1/jobs/<id>``, an SSE stream of per-window
  telemetry at ``GET /v1/jobs/<id>/events``, plus ``/v1/healthz`` and
  ``/v1/stats``;
* :mod:`repro.service.client` — :class:`ServiceClient` and the
  ``repro-harness submit|status|watch`` plumbing.

The daemon deliberately owns no new simulation semantics: execution
reuses the harness supervision machinery (retries, backoff, kill-and-
respawn), results flow through the persistent
:class:`~repro.harness.cache.ResultCache`, and wire payloads round-trip
through :mod:`repro.config.codec` — the service is a thin, recoverable
queue in front of machinery every CLI run already trusts.
"""

from repro.service.breaker import BreakerEntry, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobJournal, JobState
from repro.service.queue import JobQueue, QueueFullError
from repro.service.server import ServiceDaemon
from repro.service.stream import EventRing
from repro.service.workers import TierExecutionFailed, WorkerTier

__all__ = [
    "BreakerEntry",
    "CircuitBreaker",
    "EventRing",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ServiceClient",
    "ServiceDaemon",
    "TierExecutionFailed",
    "WorkerTier",
]
