"""Simulation-as-a-service: the long-lived serving surface of the repo.

Everything below this package turns one-shot CLI experiments into a
multi-tenant daemon (``repro-harness serve``) that accepts JSON-encoded
:class:`~repro.sim.spec.SimSpec` jobs over HTTP:

* :mod:`repro.service.jobs` — the job lifecycle state machine
  (``queued -> running -> done|failed|cancelled``) and the JSONL journal
  that lets a restarted daemon recover its queue and history;
* :mod:`repro.service.queue` — the bounded priority queue with
  cache-first admission, request coalescing (concurrent identical specs
  attach to one in-flight simulation), and 429 backpressure;
* :mod:`repro.service.server` — the stdlib-only asyncio HTTP daemon:
  ``POST /v1/jobs``, ``GET /v1/jobs/<id>``, an SSE stream of per-window
  telemetry at ``GET /v1/jobs/<id>/events``, plus ``/v1/healthz`` and
  ``/v1/stats``;
* :mod:`repro.service.client` — :class:`ServiceClient` and the
  ``repro-harness submit|status|watch`` plumbing.

The daemon deliberately owns no new simulation semantics: execution
reuses the harness :class:`~repro.harness.runner.Runner` (retries,
backoff, supervised timeouts), results flow through the persistent
:class:`~repro.harness.cache.ResultCache`, and wire payloads round-trip
through :mod:`repro.config.codec` — the service is a thin, recoverable
queue in front of machinery every CLI run already trusts.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobJournal, JobState
from repro.service.queue import JobQueue, QueueFullError
from repro.service.server import ServiceDaemon

__all__ = [
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ServiceClient",
    "ServiceDaemon",
]
