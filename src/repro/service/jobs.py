"""Job lifecycle state machine and the JSONL journal behind it.

A :class:`Job` is one submitted simulation request: workload coordinates
(app, scale, seed) plus a :class:`~repro.sim.spec.SimSpec`, addressed by
the same content key the persistent result cache uses. Jobs move through
a small validated state machine::

    queued -> running -> done | failed
    queued -> done                      (cache hit / coalesced follower)
    queued | running -> cancelled

Every submission and every transition is appended to a :class:`JobJournal`
— one JSON object per line, flushed immediately — so a daemon that
crashes or restarts can :func:`replay_journal` its way back: terminal
jobs keep their state (results re-served from the
:class:`~repro.harness.cache.ResultCache` by content key), interrupted
``queued``/``running`` jobs are re-admitted for a fresh attempt.

The journal never stores simulation *results* (those belong to the
cache); it stores intent and outcome, which keeps it small enough to
replay in milliseconds even after thousands of jobs.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigError, JobStateError
from repro.harness.cache import cache_key
from repro.sim.spec import SimSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.report import SimReport
    from repro.telemetry.hub import MetricsHub
    from repro.telemetry.series import WindowSample


class JobState(str, enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which a job never moves again.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Legal transitions of the state machine (see module docstring).
_ALLOWED: dict[JobState, frozenset] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.DONE, JobState.FAILED,
         JobState.CANCELLED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def new_job_id() -> str:
    """A short, collision-safe job identifier (``j`` + 12 hex chars)."""
    return "j" + uuid.uuid4().hex[:12]


def job_content_key(
    app: str, scale: float, seed: int, spec: SimSpec
) -> str:
    """The cache content key identifying a job's simulation cell.

    Matches :class:`~repro.harness.runner.CellSpec.key` exactly —
    including the runner's normalisation of ``measure_error`` (a replay
    with AMS off is a no-op, so the runner strips the flag and the key
    must agree or coalescing/cache admission would miss).
    """
    effective_error = (
        spec.measure_error and spec.scheduler.ams.mode.value != "off"
    )
    return cache_key(
        app=app,
        scale=scale,
        seed=seed,
        spec=dataclasses.replace(spec, measure_error=effective_error),
    )


def _apply_priority_class(spec_payload: Any, priority: int) -> Any:
    """Default the tenant class of a raw spec payload from job priority.

    Operates on the *undecoded* JSON body: a decoded
    :class:`~repro.config.tenants.TenantSpec` defaults ``tenant_class``
    to ``"bandwidth"``, which would be indistinguishable from an
    explicit choice. Tenants that name a class keep it; tenants that
    omit it inherit the class the job's ``priority`` maps to
    (:func:`~repro.config.tenants.tenant_class_for_priority`), so the
    HTTP priority queue and the DRAM arbiter honour the same contract.
    Never mutates the caller's payload.
    """
    if not isinstance(spec_payload, dict):
        return spec_payload
    mix = spec_payload.get("tenants")
    if not isinstance(mix, dict):
        return spec_payload
    roster = mix.get("tenants")
    if not isinstance(roster, list) or not any(
        isinstance(t, dict) and "tenant_class" not in t for t in roster
    ):
        return spec_payload
    from repro.config.tenants import tenant_class_for_priority

    default_class = tenant_class_for_priority(priority)
    patched = dict(spec_payload)
    patched["tenants"] = dict(mix)
    patched["tenants"]["tenants"] = [
        {"tenant_class": default_class, **t} if isinstance(t, dict) else t
        for t in roster
    ]
    return patched


@dataclass
class Job:
    """One submitted simulation request and its live serving state."""

    id: str
    app: str
    scale: float
    seed: int
    spec: SimSpec
    #: Content-addressed cache key of the underlying simulation cell.
    key: str
    #: Larger = scheduled earlier; ties broken by submission order.
    priority: int = 0
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Simulation attempts consumed (retries included).
    attempts: int = 0
    #: True when admission answered this job straight from the cache.
    cached: bool = False
    #: Primary job id when this submission coalesced onto an in-flight
    #: identical spec (the primary simulates; this job shares the result).
    coalesced_into: Optional[str] = None
    #: Structured failure (CellFailure.to_dict()) for FAILED jobs.
    error: Optional[dict] = None
    #: True when this job was rebuilt from the journal of a previous
    #: daemon process rather than submitted to this one.
    recovered: bool = False
    #: True when the result served is a *stale* cached report of a
    #: related spec, handed out because the execution tier was down.
    degraded: bool = False
    #: Crash-safe SSE event history (lazily built by the first watcher).
    ring: Optional[Any] = None
    #: The finished report (in-memory only; persisted via the cache).
    report: Optional["SimReport"] = None
    #: Concurrent identical submissions riding on this job's execution.
    followers: list["Job"] = field(default_factory=list)
    #: Live telemetry hub of the in-flight simulation (streaming jobs).
    live_hub: Optional["MetricsHub"] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_request(
        cls,
        payload: dict[str, Any],
        *,
        job_id: Optional[str] = None,
    ) -> "Job":
        """Build a job from a ``POST /v1/jobs`` JSON body.

        Raises :class:`~repro.errors.ConfigError` on malformed payloads;
        the message names the offending key (the codec names full key
        paths for nested spec fields).
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"job payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        known = {"app", "scale", "seed", "spec", "priority"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                "unknown job field(s): " + ", ".join(sorted(unknown))
            )
        app = payload.get("app")
        if not isinstance(app, str) or not app:
            raise ConfigError("job field 'app' must be a non-empty string")
        from repro.workloads.registry import list_workloads

        if app not in list_workloads():
            raise ConfigError(
                f"unknown workload {app!r} "
                f"(known: {', '.join(list_workloads())})"
            )
        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
                or scale <= 0:
            raise ConfigError("job field 'scale' must be a positive number")
        seed = payload.get("seed", 7)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigError("job field 'seed' must be an integer")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ConfigError("job field 'priority' must be an integer")
        spec_payload = payload.get("spec") or {}
        spec_payload = _apply_priority_class(spec_payload, priority)
        spec = SimSpec.from_dict(spec_payload)
        spec.validate()
        return cls(
            id=job_id or new_job_id(),
            app=app,
            scale=float(scale),
            seed=seed,
            spec=spec,
            key=job_content_key(app, float(scale), seed, spec),
            priority=priority,
        )

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL_STATES

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``; raises :class:`JobStateError` when the
        state machine forbids it (a daemon bug, surfaced loudly)."""
        if new_state not in _ALLOWED[self.state]:
            raise JobStateError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        now = time.time()
        if new_state is JobState.RUNNING:
            self.started_at = now
        elif new_state in TERMINAL_STATES:
            self.finished_at = now

    # ------------------------------------------------------------------
    def window_samples(self) -> list["WindowSample"]:
        """Every telemetry window observable for this job *right now*.

        While the simulation is in flight this reads the live sampler
        list the :class:`~repro.telemetry.sampler.WindowSeries` publishes
        on its hub (appends are GIL-atomic, so a snapshot from another
        thread is safe); after completion it reads the report timeline.
        """
        if self.report is not None and self.report.timeline is not None:
            return list(self.report.timeline.samples)
        hub = self.live_hub
        live = getattr(hub, "live_samples", None) if hub is not None else None
        return list(live) if live else []

    # ------------------------------------------------------------------
    def to_public_dict(self, *, include_result: bool = True) -> dict:
        """The JSON document ``GET /v1/jobs/<id>`` serves."""
        doc = {
            "id": self.id,
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
            "state": self.state.value,
            "priority": self.priority,
            "key": self.key,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cached": self.cached,
            "coalesced_into": self.coalesced_into,
            "recovered": self.recovered,
            "degraded": self.degraded,
            "error": self.error,
            "spec": self.spec.to_dict(),
        }
        if include_result and self.state is JobState.DONE \
                and self.report is not None:
            doc["result"] = self.report.to_dict()
        return doc


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class JobJournal:
    """Append-only JSONL record of job submissions and transitions.

    Two record shapes::

        {"type": "submit", "id": ..., "app": ..., "scale": ..., "seed":
         ..., "priority": ..., "key": ..., "spec": {...}, "at": ...}
        {"type": "state", "id": ..., "state": ..., "at": ...,
         "cached": ..., "coalesced_into": ..., "attempts": ...,
         "error": {...}|null}

    Appends are always *flushed* per record (a clean daemon exit or OS
    survives with a complete journal); how hard each record is pushed to
    the platter is the ``fsync`` knob:

    * ``"always"`` (default) — ``os.fsync`` after every record.  Maximum
      durability: even a machine power cut loses at most the one torn
      trailing line that replay already skips.
    * ``"batch"`` — fsync once every :attr:`BATCH_FSYNC_EVERY` records
      and on :meth:`close`.  Amortises the dominant per-submission
      syscall for load tests and high-RPS deployments; a *process* crash
      still loses nothing (the data sits in the page cache), only a
      whole-machine crash can drop the unsynced tail.
    """

    #: Records between fsyncs in ``"batch"`` mode.
    BATCH_FSYNC_EVERY = 64

    def __init__(
        self, path: str | os.PathLike, *, fsync: str = "always"
    ) -> None:
        if fsync not in ("always", "batch"):
            raise ConfigError(
                f"journal fsync mode must be 'always' or 'batch', "
                f"got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None
        self.records_written = 0
        self._unsynced = 0

    def open(self) -> None:
        """Open (creating parents) for appending."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._fh is not None:
            try:
                if self._unsynced:
                    self._sync()
                self._fh.close()
            finally:
                self._fh = None

    # ------------------------------------------------------------------
    def _sync(self) -> None:
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - fsync-less filesystems
            pass
        self._unsynced = 0

    def _append(self, record: dict) -> None:
        self.open()
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        self._unsynced += 1
        if self.fsync == "always" or \
                self._unsynced >= self.BATCH_FSYNC_EVERY:
            self._sync()
        self.records_written += 1

    def record_submit(self, job: Job) -> None:
        """Journal a new submission (before it is queued)."""
        self._append(
            {
                "type": "submit",
                "id": job.id,
                "app": job.app,
                "scale": job.scale,
                "seed": job.seed,
                "priority": job.priority,
                "key": job.key,
                "spec": job.spec.to_dict(),
                "at": job.submitted_at,
            }
        )

    def record_state(self, job: Job) -> None:
        """Journal the job's current state (after a transition)."""
        self._append(
            {
                "type": "state",
                "id": job.id,
                "state": job.state.value,
                "at": time.time(),
                "cached": job.cached,
                "coalesced_into": job.coalesced_into,
                "attempts": job.attempts,
                "error": job.error,
            }
        )


def replay_journal(path: str | os.PathLike) -> list[Job]:
    """Rebuild the job table from a journal file (submission order).

    Undecodable lines (torn trailing write from a crash) and ``state``
    records for unknown ids are skipped — the journal is a recovery aid,
    not a ledger whose corruption should brick the daemon. Jobs whose
    last recorded state is non-terminal come back as ``QUEUED`` (an
    interrupted ``running`` job re-runs from scratch; simulation is
    deterministic, so the retry is free of side effects). Every replayed
    job is marked :attr:`Job.recovered`.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (FileNotFoundError, OSError):
        return []
    jobs: dict[str, Job] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        rtype = record.get("type")
        if rtype == "submit":
            try:
                spec = SimSpec.from_dict(record.get("spec") or {})
                job = Job(
                    id=str(record["id"]),
                    app=str(record["app"]),
                    scale=float(record["scale"]),
                    seed=int(record["seed"]),
                    spec=spec,
                    key=str(record["key"]),
                    priority=int(record.get("priority", 0)),
                    submitted_at=float(record.get("at", 0.0)),
                )
            except (KeyError, TypeError, ValueError, ConfigError):
                continue
            job.recovered = True
            jobs[job.id] = job
        elif rtype == "state":
            job = jobs.get(str(record.get("id")))
            if job is None:
                continue
            try:
                state = JobState(record.get("state"))
            except ValueError:
                continue
            job.state = state
            job.cached = bool(record.get("cached", False))
            raw = record.get("coalesced_into")
            job.coalesced_into = str(raw) if raw is not None else None
            job.attempts = int(record.get("attempts", 0))
            job.error = record.get("error")
            if state in TERMINAL_STATES:
                job.finished_at = float(record.get("at", 0.0))
    recovered = list(jobs.values())
    for job in recovered:
        if job.state not in TERMINAL_STATES:
            # Interrupted mid-flight: back to the queue for a fresh run.
            job.state = JobState.QUEUED
            job.started_at = None
            job.coalesced_into = None
    return recovered
