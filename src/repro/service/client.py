"""Client for the simulation-service daemon (stdlib ``http.client``).

:class:`ServiceClient` speaks the small JSON protocol of
:mod:`repro.service.server`: submit :class:`~repro.sim.spec.SimSpec`
jobs, poll status, block until done, iterate the SSE telemetry stream,
and read service stats. It backs the ``repro-harness submit|status|watch``
subcommands and is the programmatic surface sweep scripts use::

    from repro.service import ServiceClient
    from repro.sim.spec import SimSpec

    client = ServiceClient(port=8732)
    job = client.submit("SCP", spec=SimSpec(scheduler=dyn_dms()),
                        scale=0.25)
    report = client.wait_for_report(job["id"])

Every call opens a fresh connection (the daemon is ``Connection:
close``), so a client object is cheap, stateless, and thread-safe to
share across a submitting thread pool.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Callable, Iterator, Optional
from urllib.parse import quote

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    ServiceBusyError,
    ServiceError,
)
from repro.sim.report import SimReport
from repro.sim.spec import SimSpec

#: Hard ceiling on one busy-retry sleep, jitter included.
MAX_RETRY_SLEEP = 30.0


class ServiceClient:
    """Thin JSON/HTTP client for one daemon endpoint.

    ``rng`` drives the retry jitter (an injectable
    :class:`random.Random` keeps tests deterministic).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8732,
        *,
        timeout: float = 60.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def _busy_delay(self, retry_after: float) -> float:
        """The server's Retry-After hint, jittered and capped.

        Full jitter in ``[hint/2, hint]`` decorrelates a fleet of
        clients that were all shed in the same overload burst — without
        it they would re-dogpile the daemon exactly in step. The cap
        keeps a pathological hint from stalling a sweep for minutes.
        """
        hint = max(0.0, float(retry_after))
        jittered = hint / 2.0 + self.rng.random() * (hint / 2.0)
        return min(jittered, MAX_RETRY_SLEEP)

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> tuple[int, dict, dict]:
        """One round trip; returns (status, response headers, JSON body)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                document = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                document = {"error": raw.decode("utf-8", "replace")}
            return (
                response.status,
                dict(response.getheaders()),
                document,
            )
        finally:
            conn.close()

    @staticmethod
    def _retry_after_of(headers: dict, doc: dict, default: float) -> float:
        try:
            return float(
                doc.get("retry_after")
                or headers.get("Retry-After", default)
            )
        except (TypeError, ValueError):
            return default

    @classmethod
    def _raise_for(cls, status: int, headers: dict, doc: dict) -> None:
        message = doc.get("error", f"HTTP {status}")
        if status == 429 or status == 503:
            raise ServiceBusyError(
                message,
                retry_after=cls._retry_after_of(headers, doc, 1.0),
            )
        if status == 422:
            raise CircuitOpenError(
                message,
                retry_after=cls._retry_after_of(headers, doc, 60.0),
                last_error=(doc.get("breaker") or {}).get("last_error"),
            )
        if status == 400:
            raise ConfigError(message)
        if status >= 400:
            raise ServiceError(f"{message} (HTTP {status})")

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The daemon's liveness document."""
        status, headers, doc = self._request("GET", "/v1/healthz")
        self._raise_for(status, headers, doc)
        return doc

    def stats(self) -> dict:
        """Service counters, queue occupancy, and cache snapshot."""
        status, headers, doc = self._request("GET", "/v1/stats")
        self._raise_for(status, headers, doc)
        return doc

    # ------------------------------------------------------------------
    def experiments(self, **filters: Any) -> list[dict]:
        """Warehouse experiment rows, optionally filtered.

        Keyword filters (``app=``, ``scheme=``, ``device=``, ``ecc=``,
        ``seed=``) become query-string parameters; the server rejects
        unknown ones with 400 (:class:`~repro.errors.ConfigError` here).
        """
        pairs = [
            f"{quote(name)}={quote(str(value))}"
            for name, value in sorted(filters.items())
            if value is not None
        ]
        path = "/v1/experiments"
        if pairs:
            path += "?" + "&".join(pairs)
        status, headers, doc = self._request("GET", path)
        self._raise_for(status, headers, doc)
        return doc.get("experiments", [])

    def experiment(self, content_key: str) -> dict:
        """One flattened experiment row (full report blob included)."""
        status, headers, doc = self._request(
            "GET", f"/v1/experiments/{content_key}"
        )
        self._raise_for(status, headers, doc)
        return doc

    def experiments_summary(self) -> dict:
        """The warehouse aggregate summary — the exact
        ``ExperimentResults.summary()`` document the CLI render uses."""
        status, headers, doc = self._request(
            "GET", "/v1/experiments/summary"
        )
        self._raise_for(status, headers, doc)
        return doc

    # ------------------------------------------------------------------
    def submit(
        self,
        app: str,
        *,
        spec: Optional[SimSpec | dict] = None,
        scale: float = 1.0,
        seed: int = 7,
        priority: int = 0,
        retry_busy: int = 0,
    ) -> dict:
        """Submit one job; returns the server's job document.

        ``retry_busy`` re-submits up to N times on 429/503, sleeping a
        *jittered* fraction of the server's ``Retry-After`` hint between
        tries (capped at :data:`MAX_RETRY_SLEEP`) — the polite way to
        drive a sweep into a bounded queue without every shed client
        re-dogpiling the daemon in step.
        """
        if spec is None:
            spec_doc: dict = {}
        elif isinstance(spec, SimSpec):
            spec_doc = spec.to_dict()
        else:
            spec_doc = spec
        payload = {
            "app": app,
            "scale": scale,
            "seed": seed,
            "priority": priority,
            "spec": spec_doc,
        }
        attempts_left = max(0, retry_busy)
        while True:
            status, headers, doc = self._request(
                "POST", "/v1/jobs", payload
            )
            if status in (429, 503) and attempts_left > 0:
                attempts_left -= 1
                self._sleep(self._busy_delay(
                    self._retry_after_of(headers, doc, 1.0)
                ))
                continue
            self._raise_for(status, headers, doc)
            job = doc.get("job", {})
            job["outcome"] = doc.get("outcome")
            return job

    def job(self, job_id: str) -> dict:
        """Current status document of one job (result included when done)."""
        status, headers, doc = self._request("GET", f"/v1/jobs/{job_id}")
        self._raise_for(status, headers, doc)
        return doc

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued job."""
        status, headers, doc = self._request(
            "POST", f"/v1/jobs/{job_id}/cancel"
        )
        self._raise_for(status, headers, doc)
        return doc

    def shutdown(self, *, drain: bool = True) -> dict:
        """Ask the daemon to stop (draining queued jobs first by default)."""
        status, headers, doc = self._request(
            "POST", "/v1/shutdown", {"drain": drain}
        )
        self._raise_for(status, headers, doc)
        return doc

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        *,
        poll_seconds: float = 0.1,
        timeout: float = 600.0,
    ) -> dict:
        """Block until the job is terminal; returns the final document."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc.get("state") in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')!r} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)

    def wait_for_report(
        self,
        job_id: str,
        *,
        poll_seconds: float = 0.1,
        timeout: float = 600.0,
    ) -> SimReport:
        """Like :meth:`wait` but decodes the result into a SimReport.

        Raises :class:`~repro.errors.ServiceError` when the job failed
        or was cancelled (the failure record rides in the message).
        """
        doc = self.wait(
            job_id, poll_seconds=poll_seconds, timeout=timeout
        )
        if doc.get("state") != "done":
            error = doc.get("error") or {}
            raise ServiceError(
                f"job {job_id} {doc.get('state')}: "
                f"{error.get('error_type', '?')}: "
                f"{error.get('message', '')}"
            )
        result = doc.get("result")
        if result is None:
            raise ServiceError(
                f"job {job_id} is done but its result is no longer "
                "cached on the server"
            )
        return SimReport.from_dict(result)

    # ------------------------------------------------------------------
    def events(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        last_event_id: Optional[int] = None,
    ) -> Iterator[tuple[str, Any]]:
        """Iterate the job's SSE stream as ``(event, data)`` pairs.

        The stream ends when the server closes it (after the terminal
        event); ``data`` is JSON-decoded when possible, and id-stamped
        frames get their id attached as ``data["event_id"]`` (dict
        payloads only).  Pass ``last_event_id`` — the highest
        ``event_id`` seen before a dropped connection — to reconnect
        and replay exactly the missed window (the standard SSE
        ``Last-Event-ID`` header; see :meth:`watch` for the loop that
        does this automatically).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            headers = {}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events", headers=headers
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    doc = {"error": raw.decode("utf-8", "replace")}
                self._raise_for(response.status, {}, doc)
            event = "message"
            event_id: Optional[int] = None
            data_lines: list[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line == "":
                    if data_lines:
                        data = "\n".join(data_lines)
                        try:
                            payload = json.loads(data)
                        except json.JSONDecodeError:
                            payload = data
                        if event_id is not None \
                                and isinstance(payload, dict):
                            payload["event_id"] = event_id
                        yield event, payload
                    event = "message"
                    event_id = None
                    data_lines = []
                elif line.startswith("id:"):
                    try:
                        event_id = int(line[len("id:"):].strip())
                    except ValueError:
                        event_id = None
                elif line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
        finally:
            conn.close()

    def watch(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        max_reconnects: int = 10,
    ) -> Iterator[tuple[str, Any]]:
        """Like :meth:`events` but survives dropped connections.

        Tracks the stream's event ids and, when the TCP connection dies
        mid-run, reconnects with ``Last-Event-ID`` so the iteration
        resumes exactly where it stopped — no duplicated and no lost
        frames (unless the server's bounded ring evicted them, which
        surfaces as a ``gap`` event).
        """
        last_id: Optional[int] = None
        reconnects = 0
        while True:
            finished = False
            try:
                for event, data in self.events(
                    job_id, timeout=timeout, last_event_id=last_id
                ):
                    if isinstance(data, dict) \
                            and "event_id" in data:
                        last_id = data["event_id"]
                    yield event, data
                    if event in ("done", "failed", "cancelled"):
                        finished = True
                finished = True
            except (ConnectionError, http.client.HTTPException, OSError):
                if reconnects >= max_reconnects:
                    raise
                reconnects += 1
                continue
            if finished:
                return
