"""The simulation-service daemon: a stdlib-only asyncio HTTP server.

``repro-harness serve`` turns the repository into a long-lived,
multi-tenant simulation service::

    POST /v1/jobs               submit a JSON SimSpec job -> job id
    GET  /v1/jobs/<id>          status (+ full SimReport when done)
    GET  /v1/jobs/<id>/events   SSE stream: state changes + per-window
                                telemetry (BWUTIL, activations, drops,
                                live Dyn-DMS X / Dyn-AMS Th_RBL)
    POST /v1/jobs/<id>/cancel   cancel a queued job
    GET  /v1/healthz            liveness probe
    GET  /v1/stats              service counters + queue + cache snapshot
    POST /v1/shutdown           graceful drain + stop
    GET  /v1/experiments        results-warehouse rows (filterable by
                                ?app=&scheme=&device=&ecc=&seed=)
    GET  /v1/experiments/<key>  one flattened experiment + report blob
    GET  /v1/experiments/summary  seed-statistics aggregates — the same
                                ``ExperimentResults.summary()`` document
                                the ``report render`` templates consume

Execution reuses the existing harness stack end to end: admission is
cache-first against the shared :class:`~repro.harness.cache.ResultCache`,
identical in-flight specs coalesce onto one computation
(:mod:`repro.service.queue`), and simulations run on a **supervised
worker tier** (:class:`~repro.service.workers.WorkerTier`): ``workers``
persistent simulator *processes* over the PR 6
:class:`~repro.harness.pool.WarmPool`, with heartbeats, per-job
wall-clock deadlines, and in-place respawn — a crashing or hung worker
fails only its own in-flight job and never takes the daemon down.
Jobs whose spec asks for telemetry run in-process (executor thread)
instead so their :class:`~repro.telemetry.sampler.WindowSeries`
samples can be streamed over SSE *while the simulation is running*.

Robustness layers around the tier:

* **circuit breaker** (:mod:`repro.service.breaker`) — a content key
  that keeps failing terminally is quarantined at admission with a
  structured HTTP 422 instead of burning workers on every retry;
* **load shedding** — when every tier worker is busy and the queue is
  past its watermark, submissions get an immediate 429 +
  ``Retry-After`` instead of unbounded queueing;
* **graceful degradation** — with the execution tier down, exact cache
  hits still serve, related specs get the last completed *stale* report
  (labeled ``degraded`` + ``X-Repro-Degraded`` header), everything else
  a 503 with a retry hint;
* **crash-safe SSE** (:mod:`repro.service.stream`) — each job owns a
  bounded event ring with monotonically increasing ids; any number of
  watchers fan out from one ring and a dropped client reconnects with
  ``Last-Event-ID`` to replay exactly what it missed.

Every submission/transition is journalled
(:class:`~repro.service.jobs.JobJournal`); a restarted daemon replays
the journal, keeps terminal jobs addressable (results re-served from
the cache by content key), and re-queues interrupted work.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, JSON bodies) — no framework, no new dependencies.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import traceback as traceback_mod
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.analytics.results import ExperimentResults
from repro.analytics.warehouse import (
    FILTER_COLUMNS,
    Warehouse,
    resolve_warehouse_path,
)
from repro.dram.request import reset_request_ids
from repro.errors import ConfigError, JobStateError
from repro.harness.cache import ResultCache
from repro.harness.faults import CellFailure, FaultPlan
from repro.harness.runner import Runner
from repro.harness.schemes import WINDOW_CYCLES
from repro.service.breaker import CircuitBreaker, RejectedByBreaker
from repro.service.jobs import (
    Job,
    JobJournal,
    JobState,
    replay_journal,
)
from repro.service.queue import ADMIT_CACHED, JobQueue, QueueFullError
from repro.service.stream import DEFAULT_RING_EVENTS, EventRing, sse_frame
from repro.service.workers import TierExecutionFailed, WorkerTier
from repro.sim.report import SimReport
from repro.sim.system import simulate_spec
from repro.telemetry.hub import (
    MetricsHub,
    SERVICE_BREAKER_OPENED,
    SERVICE_BREAKER_REJECTED,
    SERVICE_CANCELLED,
    SERVICE_COMPLETED,
    SERVICE_FAILED,
    SERVICE_RECOVERED,
    SERVICE_SHED,
    SERVICE_SIMULATIONS,
    SERVICE_SSE_STREAMS,
    SERVICE_STALE_SERVED,
    SERVICE_SUBMITTED,
)
from repro.workloads.registry import get_workload

#: Default TCP port (unassigned by IANA; "DRAM" on a phone keypad is
#: taken, so this is simply stable and memorable for local use).
DEFAULT_PORT = 8732

#: Default journal location, beside (not inside) the result cache.
DEFAULT_JOURNAL = ".repro-service/journal.jsonl"

#: Upper bound on request bodies (a SimSpec is a few KB; 8 MB is ample).
_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _JobFailed(Exception):
    """Internal: a job exhausted its retries; carries the CellFailure."""

    def __init__(self, failure: CellFailure) -> None:
        super().__init__(failure.summary())
        self.failure = failure


class ServiceDaemon:
    """One serving instance: HTTP front, bounded queue, worker tier.

    ``workers=0`` is admission-only mode (jobs queue but never run) —
    useful for tests exercising backpressure and cancellation
    deterministically.  ``process_tier=False`` keeps the PR 5 behaviour
    of executing every job on daemon threads (no crash isolation); the
    default runs non-telemetry jobs on the supervised
    :class:`~repro.service.workers.WorkerTier` of simulator processes.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        queue_size: int = 64,
        cache: Optional[ResultCache] = None,
        journal_path: str | Path = DEFAULT_JOURNAL,
        journal_fsync: str = "always",
        retries: int = 1,
        retry_backoff: float = 0.05,
        cell_timeout: Optional[float] = None,
        window_cycles: int = WINDOW_CYCLES,
        sse_poll_seconds: float = 0.05,
        sse_ring_events: int = DEFAULT_RING_EVENTS,
        process_tier: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 60.0,
        shed_watermark: float = 0.75,
        chaos: Optional[FaultPlan] = None,
        warehouse_path: str | Path | None = None,
        verbose: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if not 0.0 < shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in (0, 1]")
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_size = queue_size
        self.cache = cache if cache is not None else ResultCache()
        self.journal = JobJournal(journal_path, fsync=journal_fsync)
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.cell_timeout = cell_timeout
        self.window_cycles = window_cycles
        self.sse_poll_seconds = sse_poll_seconds
        self.sse_ring_events = sse_ring_events
        self.process_tier = process_tier
        self.shed_watermark = shed_watermark
        self.chaos = chaos
        #: Sqlite results warehouse served read-only by the
        #: ``/v1/experiments`` routes (None = $REPRO_WAREHOUSE / the
        #: default path; the routes 404 until the file exists).
        self.warehouse_path = resolve_warehouse_path(warehouse_path)
        self.verbose = verbose
        self.hub = MetricsHub(window_cycles=max(window_cycles, 1))
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        #: Supervised process tier (built in :meth:`_serve`); None in
        #: admission-only or ``process_tier=False`` mode.
        self.tier: Optional[WorkerTier] = None
        #: (app, scale, seed, scheduler name, device, ecc) -> content
        #: key of the last *completed* report — the stale-serving index
        #: of degraded mode.
        self._family_index: dict[tuple, str] = {}
        #: Every job this daemon knows (live + recovered), by id.
        self.jobs: dict[str, Job] = {}
        self.queue: Optional[JobQueue] = None
        self._running: dict[str, Job] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._worker_tasks: list[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started_at = time.time()
        self._stopping = False
        self._finished = None  # asyncio.Event, created on the loop
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._thread_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until shut down (blocking; the CLI entry point)."""
        asyncio.run(self._serve())

    def start_in_thread(self, timeout: float = 30.0) -> "ServiceDaemon":
        """Run the daemon in a background thread; returns once bound.

        ``port=0`` picks a free port; the resolved one is on
        :attr:`port` by the time this returns. Pair with :meth:`stop`.
        """
        if self._thread is not None:
            raise RuntimeError("daemon already started")

        def target() -> None:
            try:
                self.run()
            except BaseException as exc:  # surfaced by start/stop
                self._thread_error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=target, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service daemon did not start in time")
        if self._thread_error is not None:
            raise RuntimeError(
                f"service daemon failed to start: {self._thread_error!r}"
            )
        return self

    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Gracefully shut down a :meth:`start_in_thread` daemon."""
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(
                    lambda: self._loop.create_task(self._shutdown(drain))
                )
            except RuntimeError:
                pass  # loop already closing
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._finished = asyncio.Event()
        self.queue = JobQueue(
            maxsize=self.queue_size, cache=self.cache, metrics=self.hub
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.workers),
            thread_name_prefix="repro-sim",
        )
        if self.workers > 0 and self.process_tier:
            self.tier = WorkerTier(
                self.workers,
                retries=self.retries,
                retry_backoff=self.retry_backoff,
                deadline=self.cell_timeout,
                chaos=self.chaos,
                metrics=self.hub,
            )
            self.tier.start()
        self.journal.open()
        await self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.create_task(self._worker()) for _ in range(self.workers)
        ]
        self._log(
            f"serving on http://{self.host}:{self.port} "
            f"(workers={self.workers}"
            f"{' [process tier]' if self.tier else ''}, "
            f"queue={self.queue_size}, "
            f"cache={self.cache.root if self.cache.enabled else 'off'})"
        )
        self._ready.set()
        try:
            await self._finished.wait()
        finally:
            self.journal.close()

    async def _recover(self) -> None:
        """Replay the journal: keep history, re-queue interrupted jobs."""
        recovered = replay_journal(self.journal.path)
        requeued = 0
        for job in recovered:
            self.jobs[job.id] = job
            if job.terminal:
                continue
            self.hub.inc(SERVICE_RECOVERED)
            try:
                outcome = await self.queue.admit(job)
            except QueueFullError:
                job.transition(JobState.FAILED)
                job.error = {
                    "error_type": "QueueFullError",
                    "message": "queue full during journal recovery",
                }
                self.journal.record_state(job)
                continue
            if outcome == ADMIT_CACHED:
                # The interrupted run's cell finished in some other
                # daemon/CLI process meanwhile; serve it as done.
                self.journal.record_state(job)
                self.hub.inc(SERVICE_COMPLETED)
            else:
                requeued += 1
        if recovered:
            self._log(
                f"journal replay: {len(recovered)} job(s), "
                f"{requeued} re-queued"
            )

    async def _shutdown(self, drain: bool) -> None:
        if self._stopping:
            return
        self._stopping = True
        self._log(f"shutting down (drain={drain})")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            while len(self.queue) or self._running:
                await asyncio.sleep(0.02)
        await self.queue.close()
        if self._worker_tasks:
            await asyncio.gather(
                *self._worker_tasks, return_exceptions=True
            )
        if self.tier is not None:
            await self.tier.close()
        self._executor.shutdown(wait=drain, cancel_futures=not drain)
        self._finished.set()

    def _log(self, message: str) -> None:
        if self.verbose:
            import sys

            print(f"[repro-service] {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Job bookkeeping
    # ------------------------------------------------------------------
    def _set_state(self, job: Job, state: JobState) -> None:
        job.transition(state)
        self.journal.record_state(job)

    def _execution_of(self, job: Job) -> Job:
        """The job actually carrying the simulation (follows coalescing)."""
        seen = set()
        while job.coalesced_into and job.id not in seen:
            seen.add(job.id)
            primary = self.jobs.get(job.coalesced_into)
            if primary is None:
                break
            job = primary
        return job

    def _finish_job(
        self,
        job: Job,
        *,
        report: Optional[SimReport],
        error: Optional[dict],
    ) -> None:
        """Resolve a primary and all its followers to a terminal state."""
        members = [job, *job.followers]
        job.followers = []
        for member in members:
            if member.terminal:
                continue
            member.report = report
            member.error = error
            if report is not None:
                self._set_state(member, JobState.DONE)
                self.hub.inc(SERVICE_COMPLETED)
            else:
                self._set_state(member, JobState.FAILED)
                self.hub.inc(SERVICE_FAILED)

    @staticmethod
    def _family_of(job: Job) -> tuple:
        """Degraded-mode grouping: specs that are 'the same experiment'
        modulo tunables — the last completed member is an acceptable
        stale answer when the execution tier is down."""
        return (
            job.app,
            job.scale,
            job.seed,
            job.spec.scheduler.name,
            job.spec.device,
            job.spec.ecc,
        )

    def _note_success(self, job: Job) -> None:
        """A simulation (or cache hit) for this key completed: reset its
        breaker history and index it for degraded-mode stale serving."""
        self.breaker.record_success(job.key)
        self._family_index[self._family_of(job)] = job.key

    def _note_failure(
        self, job: Job, error: Optional[dict], *, fatal: bool
    ) -> None:
        """A job failed terminally: finish it and charge the breaker."""
        tripped = self.breaker.record_failure(
            job.key, error, fatal=fatal
        )
        if tripped:
            self.hub.inc(SERVICE_BREAKER_OPENED)
            self._log(
                f"circuit OPEN for key {job.key[:16]}… after "
                f"{self.breaker.threshold} consecutive failure(s)"
            )
        self._finish_job(job, report=None, error=error)

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            if job is None:
                return
            self._set_state(job, JobState.RUNNING)
            self._running[job.id] = job
            started = time.monotonic()
            try:
                if self.tier is not None and not job.spec.telemetry:
                    report = await self.tier.execute(job)
                    await self._loop.run_in_executor(
                        self._executor, self._store_result, job, report
                    )
                else:
                    report = await self._loop.run_in_executor(
                        self._executor, self._execute_sync, job
                    )
            except TierExecutionFailed as exc:
                self._note_failure(
                    job, exc.failure.to_dict(), fatal=exc.fatal
                )
            except _JobFailed as exc:
                self._note_failure(
                    job, exc.failure.to_dict(), fatal=False
                )
            except Exception as exc:  # daemon bug / unexpected
                self._note_failure(
                    job,
                    {
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": "".join(
                            traceback_mod.format_exception(
                                type(exc), exc, exc.__traceback__
                            )
                        ),
                    },
                    fatal=False,
                )
            else:
                self._note_success(job)
                self._finish_job(job, report=report, error=None)
            finally:
                self.queue.note_duration(time.monotonic() - started)
                self._running.pop(job.id, None)
                self.queue.release(job)

    @staticmethod
    def _job_meta(job: Job) -> dict:
        """Warehouse sidecar stored next to a job's cache blob (mirrors
        ``CellSpec.cache_meta`` so CLI- and service-produced blobs
        ingest identically)."""
        return {
            "app": job.app,
            "scale": job.scale,
            "seed": job.seed,
            "spec": job.spec.to_dict(),
        }

    def _store_result(self, job: Job, report: SimReport) -> None:
        """Persist a tier-produced report (the tier's workers compute;
        the daemon owns the cache) — runs on an executor thread."""
        self.hub.inc(SERVICE_SIMULATIONS)
        if self.cache.enabled:
            self.cache.store(job.key, report, meta=self._job_meta(job))

    # ------------------------------------------------------------------
    # Simulation execution (runs in executor threads)
    # ------------------------------------------------------------------
    def _execute_sync(self, job: Job) -> SimReport:
        if job.spec.telemetry:
            return self._execute_streaming(job)
        return self._execute_runner(job)

    def _execute_runner(self, job: Job) -> SimReport:
        """Run through the harness Runner: retries, backoff, and (with
        ``cell_timeout``) the supervised, self-healing process pool."""
        spec = job.spec
        label = spec.scheduler.name
        runner = Runner(
            scale=job.scale,
            seed=job.seed,
            config=spec.config,
            device=spec.device,
            ecc=spec.ecc,
            fault_model=spec.faults,
            tenants=spec.tenants,
            verbose=False,
            jobs=1,
            cache=self.cache if self.cache.enabled else None,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
            cell_timeout=self.cell_timeout,
            keep_going=True,
            faults=None,
            metrics=self.hub,
        )
        result = runner.run_matrix(
            [job.app],
            {label: spec.scheduler},
            measure_error=spec.measure_error,
        )
        if runner.simulations_run:
            self.hub.inc(SERVICE_SIMULATIONS, runner.simulations_run)
        if result.failures:
            failure = result.failures[0]
            job.attempts = failure.attempts
            raise _JobFailed(failure)
        job.attempts = max(job.attempts, 1)
        return result[(job.app, label)]

    def _execute_streaming(self, job: Job) -> SimReport:
        """In-process execution with a live telemetry hub attached, so
        the SSE streamer can watch windows arrive mid-run. Same retry
        policy and :class:`CellFailure` records as the Runner path, but
        no preemptive ``cell_timeout`` (an in-thread simulation cannot
        be killed; use a non-telemetry spec when you need hard kills).
        """
        spec = job.spec
        attempts = 0
        elapsed = 0.0
        while True:
            attempts += 1
            job.attempts = attempts
            start = time.perf_counter()
            try:
                reset_request_ids()
                workload = get_workload(
                    job.app, scale=job.scale, seed=job.seed
                )
                hub = MetricsHub(window_cycles=self.window_cycles)
                job.live_hub = hub
                report = simulate_spec(workload, spec, telemetry=hub)
            except Exception as exc:
                elapsed += time.perf_counter() - start
                if attempts > self.retries:
                    raise _JobFailed(
                        CellFailure(
                            app=job.app,
                            label=spec.scheduler.name,
                            key=job.key,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            traceback="".join(
                                traceback_mod.format_exception(
                                    type(exc), exc, exc.__traceback__
                                )
                            ),
                            attempts=attempts,
                            elapsed=elapsed,
                        )
                    ) from exc
                # PR 3's deterministic jitter-free exponential backoff.
                time.sleep(self.retry_backoff * 2.0 ** (attempts - 1))
            else:
                self.hub.inc(SERVICE_SIMULATIONS)
                if self.cache.enabled:
                    self.cache.store(
                        job.key, report, meta=self._job_meta(job)
                    )
                return report

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader, writer)
            if request is not None:
                method, path, query, body, headers = request
                await self._route(
                    method, path, query, body, headers, writer
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:
            try:
                self._respond(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            except Exception:
                pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> Optional[tuple[str, str, str, bytes, dict[str, str]]]:
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", 0))
        except ValueError:
            content_length = 0
        if content_length > _MAX_BODY_BYTES:
            self._respond(writer, 413, {"error": "request body too large"})
            return None
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        split = urlsplit(target)
        return method, split.path, split.query, body, headers

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )

    async def _route(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        headers: dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/v1/healthz" and method == "GET":
            self._respond(writer, 200, self._healthz_doc())
            return
        if path == "/v1/stats" and method == "GET":
            self._respond(writer, 200, self.stats_doc())
            return
        if path == "/v1/jobs" and method == "POST":
            await self._handle_submit(body, writer)
            return
        if path == "/v1/shutdown" and method == "POST":
            try:
                payload = json.loads(body) if body else {}
            except json.JSONDecodeError:
                payload = {}
            drain = bool(payload.get("drain", True))
            self._respond(
                writer, 202, {"ok": True, "draining": drain}
            )
            await writer.drain()
            asyncio.ensure_future(self._shutdown(drain))
            return
        if path == "/v1/experiments" and method == "GET":
            await self._handle_experiments(query, writer)
            return
        if path.startswith("/v1/experiments/") and method == "GET":
            rest = path[len("/v1/experiments/"):]
            if rest == "summary":
                await self._handle_experiments_summary(writer)
                return
            if rest and "/" not in rest:
                await self._handle_experiment(rest, writer)
                return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events") and method == "GET":
                await self._handle_events(
                    rest[: -len("/events")], headers, writer
                )
                return
            if rest.endswith("/cancel") and method == "POST":
                await self._handle_cancel(rest[: -len("/cancel")], writer)
                return
            if "/" not in rest and method == "GET":
                self._handle_status(rest, writer)
                return
        self._respond(
            writer, 404, {"error": f"no route for {method} {path}"}
        )

    # ------------------------------------------------------------------
    def _healthz_doc(self) -> dict:
        doc = {
            "ok": True,
            "serving": not self._stopping,
            "queued": len(self.queue) if self.queue else 0,
            "running": len(self._running),
            "workers": self.workers,
            "uptime_seconds": time.time() - self._started_at,
            "breaker_open_keys": len(self.breaker.open_keys),
        }
        if self.tier is not None:
            doc["tier"] = self.tier.healthz()
            if doc["tier"]["state"] != "ok":
                doc["ok"] = doc["tier"]["state"] != "down"
        else:
            doc["tier"] = {
                "state": "in-process",
                "size": self.workers,
            }
        return doc

    def stats_doc(self) -> dict:
        """The ``/v1/stats`` document (also used by tests directly)."""
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "service": self.hub.snapshot(),
            "queue": {
                "depth": len(self.queue) if self.queue else 0,
                "maxsize": self.queue_size,
                "inflight_keys": (
                    self.queue.inflight_keys if self.queue else 0
                ),
                "running": len(self._running),
                "workers": self.workers,
            },
            "jobs": by_state,
            "cache": self.cache.info(),
            "breaker": self.breaker.snapshot(),
            "tier": (
                self.tier.healthz() if self.tier is not None else None
            ),
            "uptime_seconds": time.time() - self._started_at,
        }

    # ------------------------------------------------------------------
    # Read-only analytics routes (/v1/experiments*)
    # ------------------------------------------------------------------
    def _warehouse_missing(self, writer: asyncio.StreamWriter) -> bool:
        """404 (and True) when the warehouse file does not exist yet.

        The daemon never creates the warehouse itself — it is built by
        ``repro-harness report ingest`` — so a GET before the first
        ingest is a clean 404, not an empty implicitly-created store.
        """
        if Path(self.warehouse_path).exists():
            return False
        self._respond(
            writer,
            404,
            {
                "error": (
                    f"no warehouse at {self.warehouse_path}; run "
                    "`repro-harness report ingest` first"
                )
            },
        )
        return True

    @staticmethod
    def _experiment_filters(query: str) -> dict:
        """Query-string filters for ``GET /v1/experiments``.

        Raises ``ValueError`` on unknown parameters or a non-integer
        ``seed`` (surfaced as HTTP 400).
        """
        filters: dict = {}
        for name, values in parse_qs(
            query, keep_blank_values=False
        ).items():
            if name not in FILTER_COLUMNS:
                raise ValueError(
                    f"unknown filter {name!r} "
                    f"(known: {', '.join(FILTER_COLUMNS)})"
                )
            value = values[-1]
            if name == "seed":
                try:
                    value = int(value)
                except ValueError:
                    raise ValueError(
                        f"seed must be an integer, got {value!r}"
                    ) from None
            filters[name] = value
        return filters

    async def _handle_experiments(
        self, query: str, writer: asyncio.StreamWriter
    ) -> None:
        try:
            filters = self._experiment_filters(query)
        except ValueError as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        if self._warehouse_missing(writer):
            return

        def work() -> list[dict]:
            with Warehouse(self.warehouse_path, hub=self.hub) as wh:
                return wh.rows(**filters)

        rows = await self._loop.run_in_executor(self._executor, work)
        self._respond(
            writer, 200, {"experiments": rows, "count": len(rows)}
        )

    async def _handle_experiment(
        self, content_key: str, writer: asyncio.StreamWriter
    ) -> None:
        if self._warehouse_missing(writer):
            return

        def work() -> Optional[dict]:
            with Warehouse(self.warehouse_path, hub=self.hub) as wh:
                return wh.row(content_key)

        doc = await self._loop.run_in_executor(self._executor, work)
        if doc is None:
            self._respond(
                writer,
                404,
                {"error": f"no experiment with key {content_key!r}"},
            )
            return
        self._respond(writer, 200, doc)

    async def _handle_experiments_summary(
        self, writer: asyncio.StreamWriter
    ) -> None:
        if self._warehouse_missing(writer):
            return

        def work() -> dict:
            # The same ExperimentResults.summary() the CLI render
            # consumes — the dashboard and the report cannot disagree.
            with Warehouse(self.warehouse_path, hub=self.hub) as wh:
                return ExperimentResults(wh).summary()

        doc = await self._loop.run_in_executor(self._executor, work)
        self._respond(writer, 200, doc)

    async def _handle_submit(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            self._respond(
                writer, 400, {"error": f"invalid JSON body: {exc}"}
            )
            return
        try:
            job = Job.from_request(payload)
        except ConfigError as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        if self._stopping:
            self._respond(
                writer,
                429,
                {"error": "daemon is draining"},
                headers={"Retry-After": "5"},
            )
            return
        if self.tier is not None and not self.tier.available:
            await self._handle_degraded_submit(job, writer)
            return
        if self._should_shed():
            hint = max(1.0, self.queue.retry_after_hint())
            self.hub.inc(SERVICE_SHED)
            self._respond(
                writer,
                429,
                {
                    "error": "worker tier saturated; load shed",
                    "retry_after": hint,
                },
                headers={"Retry-After": f"{hint:.0f}"},
            )
            return
        try:
            was_trial = self.breaker.check(job.key)
        except RejectedByBreaker as exc:
            self.hub.inc(SERVICE_BREAKER_REJECTED)
            self._respond(
                writer,
                422,
                {
                    "error": str(exc),
                    "error_type": "CircuitOpen",
                    "key": job.key,
                    "breaker": exc.entry.to_dict(),
                    "retry_after": exc.retry_after,
                },
                headers={"Retry-After": f"{exc.retry_after:.0f}"},
            )
            return
        try:
            outcome = await self.queue.admit(job)
        except QueueFullError as exc:
            if was_trial:
                self.breaker.abandon_trial(job.key)
            self._respond(
                writer,
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:.0f}"},
            )
            return
        self.hub.inc(SERVICE_SUBMITTED)
        self.jobs[job.id] = job
        self.journal.record_submit(job)
        if outcome == ADMIT_CACHED:
            self.journal.record_state(job)
            self.hub.inc(SERVICE_COMPLETED)
            self._note_success(job)
            status = 200
        else:
            status = 202
        self._respond(
            writer,
            status,
            {"outcome": outcome, "job": job.to_public_dict()},
        )

    def _should_shed(self) -> bool:
        """Load-shedding predicate: every tier worker busy *and* the
        queue past its watermark — more queueing only grows latency, so
        an immediate 429 with a truthful Retry-After is kinder than a
        deep queue slot.  Shedding happens before any cache probe: an
        overloaded daemon spares itself even the disk read."""
        if self.tier is None or self.workers == 0:
            return False
        return (
            len(self._running) >= self.workers
            and len(self.queue) >= max(
                1, int(self.shed_watermark * self.queue_size)
            )
        )

    async def _handle_degraded_submit(
        self, job: Job, writer: asyncio.StreamWriter
    ) -> None:
        """Serve what we can with the execution tier down: exact cache
        hits normally, a *stale* relative's report with a degraded
        label, else an honest 503 with a retry hint."""
        report = self.cache.load(job.key) if self.cache.enabled else None
        stale_key = None
        if report is None:
            stale_key = self._family_index.get(self._family_of(job))
            if stale_key is not None and self.cache.enabled:
                report = self.cache.load(stale_key)
        if report is None:
            self._respond(
                writer,
                503,
                {
                    "error": "execution tier unavailable and no cached "
                             "report to serve",
                    "retry_after": 5.0,
                },
                headers={"Retry-After": "5"},
            )
            return
        self.hub.inc(SERVICE_SUBMITTED)
        self.jobs[job.id] = job
        self.journal.record_submit(job)
        job.report = report
        job.cached = True
        degraded = stale_key is not None
        job.degraded = degraded
        job.transition(JobState.DONE)
        self.journal.record_state(job)
        self.hub.inc(SERVICE_COMPLETED)
        headers = {}
        if degraded:
            self.hub.inc(SERVICE_STALE_SERVED)
            headers["X-Repro-Degraded"] = "stale-cache"
        self._respond(
            writer,
            200,
            {
                "outcome": "degraded" if degraded else ADMIT_CACHED,
                "job": job.to_public_dict(),
            },
            headers=headers,
        )

    def _resolve_result(self, job: Job) -> None:
        """Attach the report of a DONE-but-unloaded job (post-restart)."""
        if (
            job.state is JobState.DONE
            and job.report is None
            and self.cache.enabled
        ):
            job.report = self.cache.load(job.key)

    def _handle_status(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"}
            )
            return
        self._resolve_result(job)
        self._respond(writer, 200, job.to_public_dict())

    async def _handle_cancel(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"}
            )
            return
        try:
            if job.coalesced_into is not None:
                primary = self.jobs.get(job.coalesced_into)
                if primary is not None and job in primary.followers:
                    primary.followers.remove(job)
                job.transition(JobState.CANCELLED)
                promoted = None
            else:
                promoted = await self.queue.cancel(job)
        except JobStateError as exc:
            self._respond(writer, 409, {"error": str(exc)})
            return
        self.journal.record_state(job)
        self.hub.inc(SERVICE_CANCELLED)
        # If this submission was the breaker's half-open probe, free the
        # slot so the next submission can take its place.
        self.breaker.abandon_trial(job.key)
        if promoted is not None:
            self.journal.record_state(promoted)
        self._respond(
            writer, 200, job.to_public_dict(include_result=False)
        )

    # ------------------------------------------------------------------
    # Server-sent events (crash-safe fan-out, see repro.service.stream)
    # ------------------------------------------------------------------
    async def _handle_events(
        self,
        job_id: str,
        headers: dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"}
            )
            return
        if job.ring is None:
            job.ring = EventRing(self.sse_ring_events)
        ring: EventRing = job.ring
        last_seen = 0
        raw_lei = headers.get("last-event-id", "")
        if raw_lei:
            try:
                last_seen = max(0, int(raw_lei))
            except ValueError:
                last_seen = 0
        self.hub.inc(SERVICE_SSE_STREAMS)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        gap_reported = False
        while True:
            execution = self._execution_of(job)
            if job.state is JobState.DONE and job.report is None:
                self._resolve_result(job)
            ring.sync(job, execution)
            if last_seen and not gap_reported:
                gap_reported = True
                lost = ring.lost_before(last_seen)
                if lost:
                    # Synthetic, id-less frame: the replay window lost
                    # its tail to the bounded ring.
                    writer.write(
                        (
                            "event: gap\ndata: "
                            + json.dumps({
                                "missed": lost,
                                "oldest_retained": ring.first_id,
                            })
                            + "\n\n"
                        ).encode("utf-8")
                    )
            for event_id, event, data in ring.since(last_seen):
                writer.write(
                    sse_frame(event_id, event, json.dumps(data))
                )
                last_seen = event_id
            await writer.drain()
            if job.terminal and ring.terminal_published \
                    and last_seen >= ring.last_id:
                return
            await asyncio.sleep(self.sse_poll_seconds)
