"""The supervised worker tier: N simulator processes behind the queue.

PR 5 executed every job on a thread inside the daemon process — one
wedged simulation blocked a worker thread forever, a crash in C-level
code (or an ``os._exit``) took the whole daemon down, and there was no
per-worker visibility.  :class:`WorkerTier` lifts the PR 3/PR 6
supervision machinery into the daemon: jobs run in *separate
processes* owned by a persistent :class:`~repro.harness.pool.WarmPool`,
so a dying worker fails only its own in-flight job and respawns in
place while the daemon — and every other in-flight job and SSE
watcher — keeps serving.

Supervision layers, mirroring the staged design the paper's serving
argument rests on (admission / arbitration / execution failing
independently):

* **per-attempt deadlines** — ``deadline`` bounds each attempt's
  wall-clock time; a breach kills exactly the hosting worker (the pool
  respawns the slot) and charges the attempt as a
  :class:`~repro.errors.CellTimeoutError`;
* **crash isolation + retry** — a worker death surfaces as
  :class:`~repro.errors.WorkerCrashError` on that job only; bounded
  retries with the PR 3 deterministic backoff re-dispatch onto a fresh
  worker, and because every attempt re-seeds request ids, a report
  produced after N crashes is byte-identical to a first-try run;
* **heartbeats** — a background task pings idle workers and respawns
  any that go silent (busy workers are covered by deadlines, so the
  heartbeat never misfires on a long simulation);
* **deterministic chaos** — the tier threads the same
  :class:`~repro.harness.faults.FaultPlan` grammar the harness uses
  into worker processes, keyed by tier-wide dispatch ordinal (retries
  keep their ordinal and advance the attempt), so ``exit@0/5`` rehearses
  "every 5th job kills its worker" exactly.

Failures that exhaust their retries raise :class:`TierExecutionFailed`
carrying the structured :class:`~repro.harness.faults.CellFailure` and
a ``fatal`` flag (worker-killing vs plain exception) — the daemon feeds
that flag into the per-key circuit breaker.
"""

from __future__ import annotations

import asyncio
import time
import traceback as traceback_mod
from typing import TYPE_CHECKING, Optional

from repro.errors import CellTimeoutError, WorkerCrashError
from repro.harness.faults import CellFailure, FaultPlan
from repro.harness.pool import WarmPool
from repro.sim.report import SimReport
from repro.telemetry.hub import (
    NULL_HUB,
    SERVICE_TIER_CRASHES,
    SERVICE_TIER_RESPAWNS,
    SERVICE_TIER_STALE_RESPAWNS,
    SERVICE_TIER_TIMEOUTS,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.service.jobs import Job

#: Heartbeat period (seconds) of the tier's background supervisor task.
DEFAULT_HEARTBEAT_SECONDS = 2.0

#: An idle worker silent for this many heartbeat periods is respawned.
STALE_HEARTBEATS = 5


class TierExecutionFailed(Exception):
    """A job exhausted its retries on the tier.

    ``failure`` is the structured post-mortem; ``fatal`` is True when
    at least one attempt killed or hung its worker process (the signal
    the circuit breaker weighs).
    """

    def __init__(self, failure: CellFailure, *, fatal: bool) -> None:
        super().__init__(failure.summary())
        self.failure = failure
        self.fatal = fatal


class WorkerTier:
    """Supervised pool of simulator processes feeding off the queue."""

    def __init__(
        self,
        size: int,
        *,
        retries: int = 1,
        retry_backoff: float = 0.05,
        deadline: Optional[float] = None,
        chaos: Optional[FaultPlan] = None,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
        metrics=NULL_HUB,
    ) -> None:
        if size < 1:
            raise ValueError("worker tier needs >= 1 worker")
        self.size = size
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.deadline = deadline
        self.chaos = chaos
        self.heartbeat_seconds = heartbeat_seconds
        self.metrics = metrics
        self.pool = WarmPool(
            size,
            threads=False,
            on_rebuild=self._on_rebuild,
        )
        #: Tier-wide dispatch ordinal: jobs in first-dispatch order.
        #: This is the ``cell`` a chaos plan addresses.
        self._dispatches = 0
        self._paused = False
        self._heartbeat_task: Optional[asyncio.Task] = None
        #: Jobs currently executing (id -> Job), for healthz.
        self.inflight: dict[str, "Job"] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the heartbeat supervisor on the running event loop."""
        if self._heartbeat_task is None:
            self._heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop()
            )

    async def close(self) -> None:
        """Stop the heartbeat and tear the pool down (idempotent)."""
        task, self._heartbeat_task = self._heartbeat_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.close)

    def pause(self) -> None:
        """Take the execution tier down (degraded-mode switch)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    @property
    def available(self) -> bool:
        """Whether the tier accepts work right now."""
        return not self._paused and not self.pool.closed

    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        stale_after = self.heartbeat_seconds * STALE_HEARTBEATS
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.heartbeat_seconds)
            try:
                self.pool.ping()
                respawned = await loop.run_in_executor(
                    None, self.pool.reap_stale, stale_after
                )
                if respawned:
                    self.metrics.inc(
                        SERVICE_TIER_STALE_RESPAWNS, respawned
                    )
            except Exception:
                # The heartbeat is advisory; never let it die silently
                # into a cancelled task over a transient pipe error.
                continue

    def _on_rebuild(self) -> None:
        self.metrics.inc(SERVICE_TIER_RESPAWNS)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Per-worker tier state for ``/v1/healthz``."""
        states = self.pool.worker_states()
        alive = sum(1 for s in states if s.get("alive"))
        if not self.available:
            state = "down"
        elif alive < self.size:
            state = "degraded"
        else:
            state = "ok"
        return {
            "state": state,
            "size": self.size,
            "alive": alive,
            "busy": len(self.inflight),
            "dispatches": self._dispatches,
            "respawns": self.pool.respawns,
            "workers": states,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _cell_of(self, job: "Job"):
        from repro.harness.runner import CellSpec

        spec = job.spec
        return CellSpec(
            app=job.app,
            scale=job.scale,
            seed=job.seed,
            config=spec.config,
            scheme=spec.scheduler,
            measure_error=(
                spec.measure_error
                and spec.scheduler.ams.mode.value != "off"
            ),
            device=spec.device,
            ecc=spec.ecc,
            faults=spec.faults,
            record_activations=spec.record_activations,
            tenants=spec.tenants,
        )

    async def execute(self, job: "Job") -> SimReport:
        """Run one job on the tier; returns its report or raises
        :class:`TierExecutionFailed` after ``1 + retries`` attempts.

        The job's :attr:`~repro.service.jobs.Job.attempts` counter is
        kept live so status documents show retry progress mid-flight.
        """
        if not self.available:
            raise TierExecutionFailed(
                CellFailure(
                    app=job.app,
                    label=job.spec.scheduler.name,
                    key=job.key,
                    error_type="TierUnavailable",
                    message="execution tier is paused or closed",
                    traceback="",
                    attempts=0,
                    elapsed=0.0,
                ),
                fatal=False,
            )
        cell = self._cell_of(job)
        ordinal = self._dispatches
        self._dispatches += 1
        loop = asyncio.get_running_loop()
        self.inflight[job.id] = job
        elapsed_total = 0.0
        fatal_seen = False
        last_exc: Optional[BaseException] = None
        last_tb = ""
        try:
            for attempt in range(1, self.retries + 2):
                job.attempts = attempt
                started = time.monotonic()
                future = self.pool.submit(
                    (job.key, cell, self.chaos, ordinal, attempt)
                )
                try:
                    _, report, _ = await asyncio.wait_for(
                        asyncio.wrap_future(future),
                        timeout=self.deadline,
                    )
                except asyncio.TimeoutError:
                    # wait_for cancelled the wrapper; detach and kill
                    # exactly the hosting worker (it respawns in place).
                    await loop.run_in_executor(
                        None, self.pool.kill_owner, future
                    )
                    fatal_seen = True
                    last_exc = CellTimeoutError(
                        f"{job.app}/{job.spec.scheduler.name} exceeded "
                        f"the {self.deadline:.1f}s per-attempt deadline"
                    )
                    last_tb = ""
                    self.metrics.inc(SERVICE_TIER_TIMEOUTS)
                except WorkerCrashError as exc:
                    fatal_seen = True
                    last_exc = exc
                    last_tb = "".join(traceback_mod.format_exception(
                        type(exc), exc, exc.__traceback__
                    ))
                    self.metrics.inc(SERVICE_TIER_CRASHES)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    last_exc = exc
                    last_tb = "".join(traceback_mod.format_exception(
                        type(exc), exc, exc.__traceback__
                    ))
                else:
                    return report
                elapsed_total += time.monotonic() - started
                if attempt <= self.retries:
                    # PR 3 deterministic jitter-free exponential backoff.
                    await asyncio.sleep(
                        self.retry_backoff * (2.0 ** (attempt - 1))
                    )
            raise TierExecutionFailed(
                CellFailure(
                    app=job.app,
                    label=job.spec.scheduler.name,
                    key=job.key,
                    error_type=type(last_exc).__name__,
                    message=str(last_exc),
                    traceback=last_tb,
                    attempts=self.retries + 1,
                    elapsed=elapsed_total,
                ),
                fatal=fatal_seen,
            )
        finally:
            self.inflight.pop(job.id, None)


__all__ = [
    "DEFAULT_HEARTBEAT_SECONDS",
    "TierExecutionFailed",
    "WorkerTier",
]
