"""Per-content-key circuit breaker for the service worker tier.

A *poison spec* — one whose simulation deterministically crashes, kills
its worker process, or times out on every attempt — would otherwise
burn the whole tier: every resubmission re-runs it (failures are never
cached), each run consumes ``1 + retries`` attempts, and worker-killing
specs force a process respawn per attempt.  The breaker quarantines
such specs at admission instead, following the classic three-state
design:

* **closed** (default) — submissions pass through.  Terminal failures
  of the key are counted; :attr:`~CircuitBreaker.threshold` consecutive
  failures trip the breaker.
* **open** — submissions for the key are rejected immediately with a
  structured HTTP 422 (``error_type: "CircuitOpen"``), carrying the
  failure count, the last recorded error, and a ``Retry-After`` equal
  to the remaining cooldown.  The worker tier never sees the spec.
* **half-open** — after :attr:`~CircuitBreaker.cooldown` seconds, one
  trial submission is admitted.  Success closes the circuit (the spec
  was a transient victim, e.g. of a chaos window); failure reopens it
  for a full cooldown.  Concurrent submissions during the trial are
  still rejected, so a recovering key costs at most one probe.

Any terminal failure counts — worker-killing ones (``exit``/hang) are
simply the expensive case the breaker exists for.  A success through
any path (including a cache hit racing in from another daemon) resets
the key.  The clock is injectable so tests can step time
deterministically instead of sleeping through cooldowns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Breaker states (stringly typed: they travel in JSON documents).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass
class BreakerEntry:
    """Failure-tracking state of one content key."""

    state: str = STATE_CLOSED
    #: Consecutive terminal failures since the last success.
    failures: int = 0
    #: Of those, failures that killed or hung a worker process.
    fatal_failures: int = 0
    #: Clock reading when the breaker last opened.
    opened_at: float = 0.0
    #: Structured record (``CellFailure.to_dict()``) of the last failure.
    last_error: Optional[dict] = None
    #: A half-open probe is currently executing.
    trial_pending: bool = False

    def to_dict(self) -> dict:
        doc = {
            "state": self.state,
            "failures": self.failures,
            "fatal_failures": self.fatal_failures,
        }
        if self.last_error is not None:
            doc["last_error"] = {
                "error_type": self.last_error.get("error_type"),
                "message": self.last_error.get("message"),
            }
        return doc


class RejectedByBreaker(Exception):
    """Internal signal: admission must answer 422 for this key."""

    def __init__(self, key: str, entry: BreakerEntry, retry_after: float):
        super().__init__(
            f"circuit open for spec {key[:16]}…: "
            f"{entry.failures} consecutive failure(s)"
        )
        self.key = key
        self.entry = entry
        self.retry_after = retry_after


class CircuitBreaker:
    """Content-key keyed breaker map with deterministic time injection."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("breaker cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self._entries: dict[str, BreakerEntry] = {}
        #: Lifetime count of circuits tripped (for /v1/stats).
        self.opened_total = 0
        #: Lifetime count of submissions rejected while open.
        self.rejected_total = 0

    # ------------------------------------------------------------------
    def entry(self, key: str) -> Optional[BreakerEntry]:
        """The tracked entry for ``key`` (None when never failed)."""
        return self._entries.get(key)

    def check(self, key: str) -> bool:
        """Admission gate: raises :class:`RejectedByBreaker` when the
        circuit is open (or a half-open trial is already in flight);
        otherwise marks a half-open trial when one is due.  Returns True
        when this submission *is* the half-open probe (callers that then
        fail to enqueue it must :meth:`abandon_trial`).
        """
        entry = self._entries.get(key)
        if entry is None or entry.state == STATE_CLOSED:
            return False
        now = self.clock()
        remaining = entry.opened_at + self.cooldown - now
        if entry.state == STATE_OPEN and remaining <= 0:
            entry.state = STATE_HALF_OPEN
            entry.trial_pending = False
        if entry.state == STATE_HALF_OPEN:
            if entry.trial_pending:
                self.rejected_total += 1
                raise RejectedByBreaker(
                    key, entry, max(1.0, self.cooldown)
                )
            entry.trial_pending = True  # this submission is the probe
            return True
        self.rejected_total += 1
        raise RejectedByBreaker(key, entry, max(1.0, remaining))

    def abandon_trial(self, key: str) -> None:
        """Give up a half-open probe that never ran (shed, queue-full,
        or cancelled) so the next submission can take its place."""
        entry = self._entries.get(key)
        if entry is not None and entry.state == STATE_HALF_OPEN:
            entry.trial_pending = False

    # ------------------------------------------------------------------
    def record_failure(
        self, key: str, error: Optional[dict], *, fatal: bool = False
    ) -> bool:
        """Count one terminal failure; returns True when this trips
        (or re-trips) the circuit open."""
        entry = self._entries.setdefault(key, BreakerEntry())
        entry.failures += 1
        if fatal:
            entry.fatal_failures += 1
        entry.last_error = error
        entry.trial_pending = False
        if entry.state == STATE_HALF_OPEN or (
            entry.state == STATE_CLOSED
            and entry.failures >= self.threshold
        ):
            entry.state = STATE_OPEN
            entry.opened_at = self.clock()
            self.opened_total += 1
            return True
        if entry.state == STATE_OPEN:
            entry.opened_at = self.clock()
        return False

    def record_success(self, key: str) -> None:
        """A simulation for ``key`` completed: forget its history."""
        self._entries.pop(key, None)

    # ------------------------------------------------------------------
    @property
    def open_keys(self) -> list[str]:
        """Keys currently quarantined (open or probing half-open)."""
        return [
            key for key, entry in self._entries.items()
            if entry.state != STATE_CLOSED
        ]

    def snapshot(self) -> dict:
        """Stats document: totals plus every non-closed entry."""
        return {
            "threshold": self.threshold,
            "cooldown_seconds": self.cooldown,
            "opened_total": self.opened_total,
            "rejected_total": self.rejected_total,
            "open": {
                key: entry.to_dict()
                for key, entry in self._entries.items()
                if entry.state != STATE_CLOSED
            },
        }


__all__ = [
    "BreakerEntry",
    "CircuitBreaker",
    "RejectedByBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]
