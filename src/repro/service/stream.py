"""Crash-safe SSE fan-out: per-job event rings with monotonic ids.

PR 5's SSE streamer generated frames independently per connection: a
dropped TCP connection lost its place in the stream, and every watcher
re-derived state transitions on its own.  This module makes the event
*history* a first-class, shared object:

* every job owns one bounded :class:`EventRing`;
* events (window samples, state changes, the terminal summary) are
  published into the ring exactly once, with monotonically increasing
  integer ids — publication is idempotent because the ring tracks
  per-source high-water marks, so any number of concurrently polling
  watchers can drive it without duplicating frames;
* each SSE connection is a cursor over the ring.  Frames carry an
  ``id:`` field, so a client that reconnects with the standard
  ``Last-Event-ID`` header replays exactly the missed window — across
  connection drops and even across watchers (N watchers of one running
  job read one ring: the fan-out mirror of the queue's N-submissions →
  1-simulation coalescing);
* the ring is bounded (``maxlen``).  A reconnect that asks for events
  older than the ring's tail gets a ``gap`` event naming how many
  frames were evicted, then the surviving window — bounded memory, no
  silent loss.

Everything here runs on the daemon's event loop (watchers are asyncio
handlers), so the ring needs no locking; the only cross-thread read is
the live telemetry sample list, which the hub documents as snapshot-safe.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.service.jobs import Job

#: Default ring capacity (events, not bytes). 512 events comfortably
#: hold the telemetry of a full streamed run at the default window.
DEFAULT_RING_EVENTS = 512


class EventRing:
    """Bounded, id-stamped event history of one job."""

    def __init__(self, maxlen: int = DEFAULT_RING_EVENTS) -> None:
        if maxlen < 1:
            raise ValueError("ring maxlen must be >= 1")
        self.maxlen = maxlen
        #: (id, event name, JSON-ready payload), oldest first.
        self._events: deque[tuple[int, str, dict]] = deque(maxlen=maxlen)
        self._next_id = 1
        #: Events evicted by the bound (for gap reporting).
        self.dropped = 0
        # Publication high-water marks (what has already been ringed).
        self._windows_published = 0
        self._last_state: Optional[str] = None
        self.terminal_published = False

    # ------------------------------------------------------------------
    def append(self, event: str, data: dict) -> int:
        """Publish one event; returns its id."""
        event_id = self._next_id
        self._next_id += 1
        if len(self._events) == self.maxlen:
            self.dropped += 1
        self._events.append((event_id, event, data))
        return event_id

    @property
    def first_id(self) -> int:
        """Id of the oldest retained event (0 when empty)."""
        return self._events[0][0] if self._events else 0

    @property
    def last_id(self) -> int:
        """Id of the newest event (0 when none were ever published)."""
        return self._next_id - 1

    def since(self, last_seen: int) -> list[tuple[int, str, dict]]:
        """Every retained event with id > ``last_seen``, oldest first."""
        return [e for e in self._events if e[0] > last_seen]

    def lost_before(self, last_seen: int) -> int:
        """Events a cursor at ``last_seen`` can no longer replay."""
        if not self._events:
            return 0
        return max(0, self.first_id - last_seen - 1)

    # ------------------------------------------------------------------
    def sync(self, job: "Job", execution: Optional["Job"] = None) -> None:
        """Publish whatever the job has produced since the last sync.

        Idempotent and shared: every watcher calls this from its poll
        loop; the high-water marks guarantee each window sample, state
        change, and the terminal summary enter the ring exactly once,
        no matter how many watchers race (they all run on the one event
        loop, so there is no true concurrency to defend against — only
        repetition).

        ``execution`` is the job actually carrying the simulation when
        ``job`` is a coalesced follower — window samples stream from the
        primary's live hub while state/terminal events stay the
        follower's own.
        """
        samples = (execution or job).window_samples()
        for sample in samples[self._windows_published:]:
            self.append("window", sample.to_dict())
        self._windows_published = max(
            self._windows_published, len(samples)
        )
        state = job.state.value
        if state != self._last_state:
            self._last_state = state
            self.append(
                "state", job.to_public_dict(include_result=False)
            )
        if job.terminal and not self.terminal_published:
            self.terminal_published = True
            summary: dict = {
                "id": job.id,
                "state": state,
                "cached": job.cached,
                "degraded": job.degraded,
                "windows": self._windows_published,
                "error": job.error,
            }
            if job.report is not None:
                summary["metrics"] = {
                    "ipc": job.report.ipc,
                    "activations": job.report.activations,
                    "row_energy_nj": job.report.row_energy_nj,
                    "coverage": job.report.coverage,
                    "elapsed_mem_cycles": job.report.elapsed_mem_cycles,
                }
            self.append(state, summary)


def sse_frame(event_id: int, event: str, data_json: str) -> bytes:
    """One wire-format SSE frame with its replayable id."""
    return (
        f"id: {event_id}\nevent: {event}\ndata: {data_json}\n\n"
    ).encode("utf-8")


__all__ = ["DEFAULT_RING_EVENTS", "EventRing", "sse_frame"]
