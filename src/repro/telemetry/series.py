"""Per-window telemetry time series.

A :class:`Timeline` is the windowed trajectory of one simulation run:
one :class:`WindowSample` per scheduler window (plus a trailing partial
window covering the tail of the run). Both types are plain dataclasses
with lossless ``to_dict``/``from_dict`` round-trips, so a timeline can
ride inside :class:`~repro.sim.report.SimReport` through the persistent
result cache exactly like every other report field.

Counters (activations, drops, ...) are *deltas within the window*;
``coverage`` and the X / Th_RBL trajectories are the live values at the
window boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class WindowSample:
    """Telemetry captured for one scheduler window ``[start, end)``."""

    #: 0-based window index.
    index: int
    #: Window bounds, memory cycles.
    start: float
    end: float
    #: Data-bus busy cycles inside the window, summed over channels.
    busy_cycles: float
    #: ``busy_cycles / (window length * num channels)``.
    bwutil: float
    #: Per-channel bus utilisation inside the window.
    bwutil_per_channel: list[float]
    #: Visible pending-queue occupancy at the window boundary (all MCs).
    queue_depth: int
    #: Requests waiting in the (invisible) ingress FIFOs at the boundary.
    ingress_backlog: int
    #: Row activations issued inside the window.
    activations: int
    #: Column accesses served inside the window.
    requests_served: int
    #: Global reads that arrived inside the window.
    reads_arrived: int
    #: Requests dropped (answered by the VP unit) inside the window.
    drops: int
    #: Drops for which the VP found a donor line (vs zero-fallback).
    drops_with_donor: int
    #: Cumulative prediction coverage at the window boundary.
    coverage: float
    #: Row-buffer locality inside the window (served / activations).
    rbl: float
    #: L2 hits/misses inside the window, summed over slices.
    l2_hits: int
    l2_misses: int
    #: Engine events scheduled inside the window (activity proxy; the
    #: live run-loop counter is a hot-path local, so the scheduled count
    #: is the zero-cost observable).
    events: int
    #: Live DMS delay X per channel at the window boundary.
    dms_x: list[float]
    #: Live AMS Th_RBL per channel at the window boundary.
    th_rbl: list[int]

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "busy_cycles": self.busy_cycles,
            "bwutil": self.bwutil,
            "bwutil_per_channel": list(self.bwutil_per_channel),
            "queue_depth": self.queue_depth,
            "ingress_backlog": self.ingress_backlog,
            "activations": self.activations,
            "requests_served": self.requests_served,
            "reads_arrived": self.reads_arrived,
            "drops": self.drops,
            "drops_with_donor": self.drops_with_donor,
            "coverage": self.coverage,
            "rbl": self.rbl,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "events": self.events,
            "dms_x": list(self.dms_x),
            "th_rbl": list(self.th_rbl),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowSample":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class Timeline:
    """The full windowed telemetry series of one run."""

    #: Nominal window length, memory cycles (the last window may be short).
    window_cycles: int
    samples: list[WindowSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[WindowSample]:
        return iter(self.samples)

    # ------------------------------------------------------------------
    # Trajectory accessors (per-channel series, paper Fig. 9/11 style)
    # ------------------------------------------------------------------
    def series(self, name: str) -> list:
        """The per-window values of one scalar sample field."""
        return [getattr(s, name) for s in self.samples]

    def dms_x_trajectory(self, channel: int = 0) -> list[tuple[int, float]]:
        """(window index, X) pairs for one channel (Fig. 9 style)."""
        return [(s.index, s.dms_x[channel]) for s in self.samples]

    def th_rbl_trajectory(self, channel: int = 0) -> list[tuple[int, int]]:
        """(window index, Th_RBL) pairs for one channel (Fig. 11 style)."""
        return [(s.index, s.th_rbl[channel]) for s in self.samples]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot (lossless)."""
        return {
            "window_cycles": self.window_cycles,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["Timeline"]:
        """Inverse of :meth:`to_dict`; ``None`` passes through."""
        if data is None:
            return None
        return cls(
            window_cycles=data["window_cycles"],
            samples=[WindowSample.from_dict(s) for s in data["samples"]],
        )
