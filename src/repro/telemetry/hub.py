"""The telemetry hub: named counters, gauges, and the window recorder.

Telemetry is *strictly opt-in*. Components receive :data:`NULL_HUB` by
default — a singleton whose methods are no-ops — so the simulator's hot
path pays nothing when observability is off. Passing a real
:class:`MetricsHub` to :class:`~repro.sim.system.GPUSystem` (or
``simulate(..., telemetry=hub)``) turns on:

* named **counters** (monotonic, e.g. ``"mc0.ams.drops"``) and
  **gauges** (last-value, e.g. ``"mc0.dms.x"``) that instrumented
  components update at low-frequency points (window ticks, drops);
* the :class:`~repro.telemetry.sampler.WindowSeries` recorder, which
  probes the engine, controllers, DMS/AMS units, value predictor, and
  L2 slices every ``window_cycles`` and builds the
  :class:`~repro.telemetry.series.Timeline` attached to the report.

Every probe is **read-only**: a telemetry-on run produces a
``SimReport`` whose simulation fields are identical to the same run
with telemetry off (enforced by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.series import Timeline

#: Default window, matching the paper's 4096-cycle profiling interval.
DEFAULT_WINDOW_CYCLES = 4096

# ----------------------------------------------------------------------
# Canonical counter names of the harness fault-tolerance layer. The
# supervised runner increments these on its own MetricsHub so a sweep's
# health (retries, hangs, dead workers, quarantined cells) is readable
# from one snapshot() — and assertable in the chaos tests.
# ----------------------------------------------------------------------
#: Cells simulated to completion (any attempt).
HARNESS_SIMULATED = "harness.cells.simulated"
#: Individual failed attempts, before retry/quarantine triage.
HARNESS_FAILED_ATTEMPTS = "harness.cells.failed_attempts"
#: Attempts that were scheduled for a retry (with backoff).
HARNESS_RETRIES = "harness.retries"
#: Attempts that breached the per-cell wall-clock timeout.
HARNESS_TIMEOUTS = "harness.timeouts"
#: Attempts lost to a dying worker process (BrokenProcessPool).
HARNESS_WORKER_CRASHES = "harness.worker_crashes"
#: Times the process pool was killed and rebuilt.
HARNESS_POOL_REBUILDS = "harness.pool_rebuilds"
#: Cells that exhausted their retries and entered the failure manifest.
HARNESS_QUARANTINED = "harness.cells.quarantined"
#: Cache blobs deliberately garbled by the chaos plan (tests only).
HARNESS_CHAOS_CORRUPTED = "harness.chaos.corrupted_blobs"

# ----------------------------------------------------------------------
# Canonical counter names of the simulation service daemon
# (:mod:`repro.service`). The daemon increments these on its own hub;
# ``GET /v1/stats`` serves the snapshot, and the end-to-end coalescing
# test asserts on them.
# ----------------------------------------------------------------------
#: Jobs accepted by ``POST /v1/jobs`` (any admission outcome).
SERVICE_SUBMITTED = "service.jobs.submitted"
#: Submissions answered straight from the persistent result cache.
SERVICE_CACHE_HITS = "service.jobs.cache_hits"
#: Submissions coalesced onto an identical in-flight computation.
SERVICE_COALESCED = "service.jobs.coalesced"
#: Submissions rejected with 429 because the bounded queue was full.
SERVICE_REJECTED = "service.jobs.rejected"
#: Jobs (primaries + followers) that reached ``done``.
SERVICE_COMPLETED = "service.jobs.completed"
#: Jobs that reached ``failed`` after exhausting their retries.
SERVICE_FAILED = "service.jobs.failed"
#: Jobs cancelled while queued.
SERVICE_CANCELLED = "service.jobs.cancelled"
#: Non-terminal jobs re-admitted from the journal after a restart.
SERVICE_RECOVERED = "service.jobs.recovered"
#: Underlying simulations actually executed by the daemon's workers
#: (cache hits and coalesced followers never increment this).
SERVICE_SIMULATIONS = "service.simulations"
#: SSE event-stream connections served.
SERVICE_SSE_STREAMS = "service.sse.streams"
#: Submissions shed with 429 because the worker tier was saturated.
SERVICE_SHED = "service.jobs.shed"
#: Stale-but-labeled cached reports served while the tier was down.
SERVICE_STALE_SERVED = "service.jobs.stale_served"
#: Circuits tripped open by consecutive terminal failures of one key.
SERVICE_BREAKER_OPENED = "service.breaker.opened"
#: Submissions rejected with 422 while their key's circuit was open.
SERVICE_BREAKER_REJECTED = "service.breaker.rejected"
#: Worker-tier processes respawned in place (crash, hang, or wedge).
SERVICE_TIER_RESPAWNS = "service.tier.respawns"
#: Idle tier workers respawned for missing heartbeats.
SERVICE_TIER_STALE_RESPAWNS = "service.tier.stale_respawns"
#: Tier attempts that breached the per-job wall-clock deadline.
SERVICE_TIER_TIMEOUTS = "service.tier.timeouts"
#: Tier attempts lost to a dying worker process.
SERVICE_TIER_CRASHES = "service.tier.worker_crashes"

# ----------------------------------------------------------------------
# Canonical counter names of the results warehouse
# (:mod:`repro.analytics`). The warehouse and the report CLI increment
# these on whatever hub they are given; the service daemon folds them
# into its ``GET /v1/stats`` snapshot.
# ----------------------------------------------------------------------
#: Experiment rows upserted from cache blobs.
ANALYTICS_INGESTED_ROWS = "analytics.rows_ingested"
#: Failure-manifest rows upserted.
ANALYTICS_INGESTED_FAILURES = "analytics.failures_ingested"
#: Benchmark history entries upserted.
ANALYTICS_INGESTED_BENCH = "analytics.bench_ingested"
#: Warehouse queries served (CLI ``report query`` + service reads).
ANALYTICS_QUERIES = "analytics.queries"
#: Reports rendered (markdown or HTML).
ANALYTICS_RENDERS = "analytics.renders"
#: Significant regressions flagged by ``report diff``.
ANALYTICS_REGRESSIONS = "analytics.regressions"


class MetricsHub:
    """Named counters/gauges plus the per-window timeline of one run."""

    #: Real hubs record; the :class:`NullHub` advertises ``False`` so
    #: instrumentation sites can skip string formatting entirely.
    enabled = True

    def __init__(self, *, window_cycles: int = DEFAULT_WINDOW_CYCLES) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = window_cycles
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: Filled in by the window recorder at the end of the run.
        self.timeline: Optional[Timeline] = None
        #: Live view of the window recorder's growing sample list,
        #: published by :class:`~repro.telemetry.sampler.WindowSeries`
        #: as soon as it attaches. List appends are GIL-atomic, so a
        #: reader in another thread (the service's SSE streamer) can
        #: snapshot it mid-run without locking.
        self.live_samples: Optional[list] = None
        #: Named append-only numeric series (one value per window),
        #: e.g. the per-tenant ``tenant.<name>.served`` timelines. Kept
        #: outside :class:`~repro.telemetry.series.WindowSample` — whose
        #: serialized key set is pinned — so new series never perturb
        #: existing timelines.
        self.series: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observed value."""
        self.gauges[name] = value

    def counter(self, name: str) -> float:
        """Current value of a counter (zero when never incremented)."""
        return self.counters.get(name, 0.0)

    def append_series(self, name: str, value: float) -> None:
        """Append one sample to the named series (created empty)."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = []
        series.append(value)

    def snapshot(self) -> dict:
        """All counters and gauges, sorted by name (for logs/tests)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }


class NullHub:
    """Disabled telemetry: every operation is a no-op.

    Shares the :class:`MetricsHub` interface so instrumented code never
    branches on ``hub is None``; the ``enabled`` flag lets rare-but-not-
    free sites (e.g. per-window gauge formatting) skip work entirely.
    """

    enabled = False
    window_cycles = 0
    timeline = None
    live_samples = None
    series: dict[str, list] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def append_series(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}}


#: The shared disabled hub handed to every component by default.
NULL_HUB = NullHub()
