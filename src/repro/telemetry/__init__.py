"""Windowed telemetry and trace export (opt-in observability layer).

See :mod:`repro.telemetry.hub` for the opt-in contract, and
``repro-harness trace <scheme> <workload>`` for the CLI entry point.
"""

from repro.telemetry.export import (
    chrome_trace,
    system_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.hub import (
    DEFAULT_WINDOW_CYCLES,
    NULL_HUB,
    MetricsHub,
    NullHub,
)
from repro.telemetry.sampler import WindowSeries
from repro.telemetry.series import Timeline, WindowSample

__all__ = [
    "DEFAULT_WINDOW_CYCLES",
    "MetricsHub",
    "NullHub",
    "NULL_HUB",
    "Timeline",
    "WindowSample",
    "WindowSeries",
    "chrome_trace",
    "system_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
