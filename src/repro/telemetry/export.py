"""Trace exporters: JSONL time series and Chrome trace-event JSON.

Two complementary views of one run:

* :func:`write_jsonl` — the windowed :class:`Timeline` as one JSON
  object per line, ready for pandas/jq/matplotlib (see EXPERIMENTS.md
  for a Fig. 9-style X-vs-window recipe).
* :func:`write_chrome_trace` — a Chrome trace-event file loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``: one
  process per channel, one thread per bank, a complete-event span per
  DRAM command (ACT/RD/WR/PRE/REF, durations from the timing
  parameters), an instant event per AMS drop, and counter tracks for
  the per-window BWUTIL / queue depth / X / Th_RBL trajectories.

Timestamps are memory cycles exported as trace microseconds (1 cycle =
1 us), so Perfetto's time axis reads directly in cycles.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.config.timing import DRAMTimings
from repro.dram.commands import CommandRecord, DRAMCommand
from repro.telemetry.series import Timeline
from repro.vp.predictor import DropRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.system import GPUSystem

#: Synthetic thread id for the per-channel drop track (banks use their
#: own indices, which are small non-negative ints).
DROP_TID = 999


def write_jsonl(timeline: Timeline, path: str | os.PathLike) -> int:
    """Write one JSON object per window sample; returns the line count."""
    with open(path, "w", encoding="utf-8") as fh:
        for sample in timeline:
            fh.write(json.dumps(sample.to_dict(), sort_keys=True))
            fh.write("\n")
    return len(timeline)


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------
def _command_duration(record: CommandRecord, timings: DRAMTimings) -> float:
    """Visualised span length of one DRAM command, memory cycles."""
    cmd = record.command
    if cmd is DRAMCommand.ACTIVATE:
        return float(timings.tRCD)
    if cmd is DRAMCommand.PRECHARGE:
        return float(timings.tRP)
    if cmd is DRAMCommand.READ:
        return float(timings.tCL + timings.tBURST)
    if cmd is DRAMCommand.WRITE:
        return float(timings.tCWL + timings.tBURST)
    return float(timings.tRFC)  # REFRESH


def command_events(
    channel_id: int,
    commands: Iterable[CommandRecord],
    timings: DRAMTimings,
) -> list[dict]:
    """Complete-event spans for one channel's command log."""
    events = []
    for record in commands:
        events.append(
            {
                "name": f"{record.command.value} r{record.row}",
                "cat": "dram",
                "ph": "X",
                "ts": record.time,
                "dur": _command_duration(record, timings),
                "pid": channel_id,
                "tid": record.bank,
                "args": {
                    "row": record.row,
                    "bank_group": record.bank_group,
                },
            }
        )
    return events


def drop_events(drops: Iterable[DropRecord]) -> list[dict]:
    """Instant events marking AMS drops on each channel's drop track."""
    events = []
    for drop in drops:
        events.append(
            {
                "name": "AMS drop",
                "cat": "ams",
                "ph": "i",
                "s": "t",
                "ts": drop.time,
                "pid": drop.channel,
                "tid": DROP_TID,
                "args": {
                    "rid": drop.rid,
                    "addr": drop.addr,
                    "donor_line_addr": drop.donor_line_addr,
                },
            }
        )
    return events


def counter_events(timeline: Optional[Timeline]) -> list[dict]:
    """Counter tracks for the windowed trajectories (pid 0)."""
    if timeline is None:
        return []
    events = []
    for sample in timeline:
        ts = sample.start
        events.append(
            {
                "name": "BWUTIL",
                "ph": "C",
                "ts": ts,
                "pid": 0,
                "args": {"bwutil": round(sample.bwutil, 6)},
            }
        )
        events.append(
            {
                "name": "queue depth",
                "ph": "C",
                "ts": ts,
                "pid": 0,
                "args": {"pending": sample.queue_depth},
            }
        )
        events.append(
            {
                "name": "DMS X",
                "ph": "C",
                "ts": ts,
                "pid": 0,
                "args": {
                    f"ch{idx}": x for idx, x in enumerate(sample.dms_x)
                },
            }
        )
        events.append(
            {
                "name": "AMS Th_RBL",
                "ph": "C",
                "ts": ts,
                "pid": 0,
                "args": {
                    f"ch{idx}": th for idx, th in enumerate(sample.th_rbl)
                },
            }
        )
    return events


def _metadata_events(
    num_channels: int, banks_per_channel: int
) -> list[dict]:
    """Process/thread naming so Perfetto shows channels and banks."""
    events = []
    for ch in range(num_channels):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": ch,
                "args": {"name": f"channel {ch}"},
            }
        )
        for bank in range(banks_per_channel):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": ch,
                    "tid": bank,
                    "args": {"name": f"bank {bank}"},
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": ch,
                "tid": DROP_TID,
                "args": {"name": "AMS drops"},
            }
        )
    return events


def chrome_trace(
    *,
    command_logs: Sequence[Optional[Sequence[CommandRecord]]],
    timings: DRAMTimings,
    banks_per_channel: int,
    drops: Iterable[DropRecord] = (),
    timeline: Optional[Timeline] = None,
) -> dict:
    """Build the trace-event JSON document for one run."""
    events: list[dict] = _metadata_events(
        len(command_logs), banks_per_channel
    )
    for ch, log in enumerate(command_logs):
        if log:
            events.extend(command_events(ch, log, timings))
    events.extend(drop_events(drops))
    events.extend(counter_events(timeline))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "memory cycles (1 cycle = 1 us)"},
    }


def system_chrome_trace(
    system: "GPUSystem",
    *,
    drops: Iterable[DropRecord] = (),
    timeline: Optional[Timeline] = None,
) -> dict:
    """Trace-event document straight from a finished :class:`GPUSystem`.

    Requires the system to have been built with ``log_commands=True``;
    channels without a command log contribute only drop/counter tracks.
    """
    return chrome_trace(
        command_logs=[ch.command_log for ch in system.channels],
        timings=system.config.timings,
        banks_per_channel=system.config.mapping.banks_per_channel,
        drops=drops,
        timeline=timeline,
    )


def write_chrome_trace(document: dict, path: str | os.PathLike) -> int:
    """Write a trace-event document; returns the number of events."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return len(document["traceEvents"])
