"""The windowed probe that records a :class:`Timeline` from a live run.

:class:`WindowSeries` schedules itself on the simulation engine every
``hub.window_cycles`` and snapshots the whole system: per-channel bus
utilisation (via the *non-destructive*
:meth:`~repro.dram.stats.BusUtilizationTracker.busy_in` query, so the
Dyn-DMS profiler's own destructive cursor is never perturbed), pending
queue depths, activation/serve/drop counters, L2 hits/misses, engine
event throughput, and the live X / Th_RBL trajectories.

Design constraints:

* **Read-only** — sampling must never mutate simulator state, so a
  telemetry-on run is field-identical to a telemetry-off run.
* **Self-terminating** — the tick only re-arms while other live events
  remain on the heap; otherwise the recorder itself would keep the
  simulation from draining.
* **Complete** — :meth:`finalize` closes a trailing partial window that
  extends to the later of the run's end and the last data burst, so the
  per-window busy cycles sum exactly to the aggregate counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.hub import MetricsHub
from repro.telemetry.series import Timeline, WindowSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.system import GPUSystem

_EPS = 1e-9


class WindowSeries:
    """Records one :class:`Timeline` from a :class:`GPUSystem` run."""

    def __init__(self, hub: MetricsHub, system: "GPUSystem") -> None:
        self.hub = hub
        self.system = system
        self.window = float(hub.window_cycles)
        self.samples: list[WindowSample] = []
        # Publish the growing list on the hub so an observer in another
        # thread (the service daemon's SSE streamer) can watch windows
        # arrive mid-run; purely an alias, never mutated from outside.
        hub.live_samples = self.samples
        self._last_end = 0.0
        # Cumulative-counter snapshots for windowed deltas.
        self._prev_acts = 0
        self._prev_served = 0
        self._prev_reads = 0
        self._prev_drops = 0
        self._prev_l2_hits = 0
        self._prev_l2_misses = 0
        self._prev_events = 0
        self._prev_drop_log = [0] * len(system.controllers)
        self._prev_donors = 0
        # Per-tenant cumulative snapshots (multi-tenant runs only).
        tracker = system.tenant_tracker
        self._prev_tenant_served = (
            [0] * len(tracker.requests_served)
            if tracker is not None else []
        )
        self._prev_tenant_drops = (
            [0] * len(tracker.requests_dropped)
            if tracker is not None else []
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first window tick."""
        self.system.engine.at(self.window, self._tick)

    def _tick(self) -> None:
        engine = self.system.engine
        now = engine.now
        self._sample(self._last_end, now)
        self._last_end = now
        # Re-arm only while the simulation itself still has work; the
        # recorder must never keep the event heap alive on its own.
        if engine.live_event_count > 0:
            engine.at(now + self.window, self._tick)

    def finalize(self, elapsed: float) -> Timeline:
        """Close the trailing partial window and build the timeline.

        The tail extends past ``elapsed`` when a final write burst is
        still occupying a data bus (writes produce no reply events, so
        the engine can drain before their bursts end); including it
        keeps ``sum(window busy) == total busy`` exact.
        """
        end = max(elapsed, self._last_end)
        for channel in self.system.channels:
            end = max(end, channel.stats.bus.last_end)
        if end > self._last_end + _EPS:
            self._sample(self._last_end, end)
            self._last_end = end
        timeline = Timeline(
            window_cycles=self.hub.window_cycles, samples=self.samples
        )
        self.hub.timeline = timeline
        return timeline

    # ------------------------------------------------------------------
    def _sample(self, start: float, end: float) -> None:
        system = self.system
        span = end - start
        busy_per_channel = [
            ch.stats.bus.busy_in(start, end) for ch in system.channels
        ]
        busy = sum(busy_per_channel)
        n_channels = len(system.channels)
        stats = [ch.stats for ch in system.channels]
        acts = sum(s.activations for s in stats)
        served = sum(s.reads_served + s.writes_served for s in stats)
        reads = sum(s.reads_arrived for s in stats)
        drops = sum(s.requests_dropped for s in stats)
        l2_hits = sum(l2.hits for l2 in system.l2s)
        l2_misses = sum(l2.misses for l2 in system.l2s)
        events = system.engine.events_scheduled
        donors = self._prev_donors
        for idx, mc in enumerate(system.controllers):
            log = mc.drops
            for record in log[self._prev_drop_log[idx]:]:
                if record.donor_line_addr is not None:
                    donors += 1
            self._prev_drop_log[idx] = len(log)
        arrived_total = sum(mc.ams.reads_arrived for mc in system.controllers)
        dropped_total = sum(mc.ams.reads_dropped for mc in system.controllers)
        coverage = dropped_total / arrived_total if arrived_total else 0.0
        d_acts = acts - self._prev_acts
        d_served = served - self._prev_served
        sample = WindowSample(
            index=len(self.samples),
            start=start,
            end=end,
            busy_cycles=busy,
            bwutil=busy / (span * n_channels) if span > 0 else 0.0,
            bwutil_per_channel=[
                b / span if span > 0 else 0.0 for b in busy_per_channel
            ],
            queue_depth=sum(len(mc.queue) for mc in system.controllers),
            ingress_backlog=sum(
                mc.queue.ingress_backlog for mc in system.controllers
            ),
            activations=d_acts,
            requests_served=d_served,
            reads_arrived=reads - self._prev_reads,
            drops=drops - self._prev_drops,
            drops_with_donor=donors - self._prev_donors,
            coverage=coverage,
            rbl=d_served / d_acts if d_acts else 0.0,
            l2_hits=l2_hits - self._prev_l2_hits,
            l2_misses=l2_misses - self._prev_l2_misses,
            events=events - self._prev_events,
            dms_x=[mc.dms.current_delay for mc in system.controllers],
            th_rbl=[mc.ams.th_rbl for mc in system.controllers],
        )
        self.samples.append(sample)
        self._prev_acts = acts
        self._prev_served = served
        self._prev_reads = reads
        self._prev_drops = drops
        self._prev_l2_hits = l2_hits
        self._prev_l2_misses = l2_misses
        self._prev_events = events
        self._prev_donors = donors
        hub = self.hub
        hub.gauge("window.bwutil", sample.bwutil)
        hub.gauge("window.queue_depth", float(sample.queue_depth))
        hub.gauge("window.coverage", coverage)
        hub.inc("window.samples")
        # Per-tenant timelines ride as hub series, not WindowSample
        # fields — the sample's serialized key set is pinned.
        tracker = system.tenant_tracker
        if tracker is not None:
            names = [t.name for t in tracker.mix.tenants]
            for tid, name in enumerate(names):
                served_now = tracker.requests_served[tid]
                drops_now = tracker.requests_dropped[tid]
                hub.append_series(
                    f"tenant.{name}.served",
                    float(served_now - self._prev_tenant_served[tid]),
                )
                hub.append_series(
                    f"tenant.{name}.drops",
                    float(drops_now - self._prev_tenant_drops[tid]),
                )
                self._prev_tenant_served[tid] = served_now
                self._prev_tenant_drops[tid] = drops_now
