"""Fig. 2 — effect of FR-FCFS pending-queue size on activations.

Paper: activations drop as the queue grows and saturate around 128
entries (the baseline size).
"""

from conftest import SWEEP_APPS

from repro.harness.experiments import QUEUE_SIZES, fig02
from repro.harness.tables import geomean


def test_fig02_queue_size(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig02(runner, apps=SWEEP_APPS), rounds=1, iterations=1
    )
    print()
    print(result.text)
    data = result.data["normalized_acts"]
    means = {
        s: geomean(data[a][s] for a in SWEEP_APPS) for s in QUEUE_SIZES
    }
    # Small queues see at least as many activations as the 128-entry
    # baseline. (Our traces' merge potential is mostly *temporal* — DMS
    # territory — so baseline queue-size sensitivity is milder than the
    # paper's; the thrash-heavy apps carry the trend. See EXPERIMENTS.md.)
    assert means[16] >= means[64] >= means[128] - 1e-9
    assert max(data[a][16] for a in SWEEP_APPS) > 1.01
    # Growth beyond 128 saturates (within a few percent) — the paper's
    # justification for the 128-entry baseline.
    assert abs(means[256] - means[128]) < 0.06
