"""Fig. 14 — laplacian output quality under Dyn-DMS + Dyn-AMS.

Paper: the sharpened image shows limited degradation at 17 %
application error.
"""

from repro.harness.experiments import fig14


def test_fig14_laplacian_quality(runner, benchmark):
    result = benchmark.pedantic(lambda: fig14(runner), rounds=1,
                                iterations=1)
    print()
    print(result.text)
    error = result.data["error"] or 0.0
    # Limited quality degradation: bounded error, recognisable image.
    assert error < 0.40
    assert result.data["psnr"] > 12.0
    assert result.data["exact"].shape == result.data["approx"].shape
