"""Fig. 15 — delay-only mode for low-error-tolerance applications.

Paper: Static-/Dyn-DMS still reduce Group-4 row energy with <= 5 % IPC
loss; Dyn-DMS trades a little more IPC for more energy.
"""

from repro.harness.experiments import fig15
from repro.harness.tables import geomean

APPS = ("GEMM", "ATAX", "CONS", "newtonraph", "SLA")


def test_fig15_group4_delay_only(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig15(runner, apps=APPS), rounds=1, iterations=1
    )
    print()
    print(result.text)
    energy = result.data["energy"]
    ipc = result.data["ipc"]
    # Both DMS schemes save row energy on average. Our Dyn-DMS is more
    # conservative than the paper's (the 95 % BWUTIL guard on short
    # traces), so unlike the paper it saves *less* than Static-DMS —
    # but it delivers the property the guard exists for: near-baseline
    # IPC where the static delay overshoots.
    assert geomean(energy["Static-DMS"]) < 0.97
    assert geomean(energy["Dyn-DMS"]) <= 1.005
    assert geomean(ipc["Dyn-DMS"]) >= geomean(ipc["Static-DMS"]) - 1e-9
    assert geomean(ipc["Dyn-DMS"]) > 0.9
