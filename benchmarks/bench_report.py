"""Warehouse analytics throughput: ingest rows/s and warm query latency.

The warehouse sits between every sweep and every report, so two numbers
bound how it feels in practice:

* **ingest** — walking the content-addressed cache and flattening each
  blob into sqlite (JSON decode + report rehydration + upsert).  This
  is the cost of ``repro-harness report ingest`` after a big sweep, so
  it is measured in rows/s over a cache of real report blobs.
* **warm query** — filtered ``rows()`` reads and one full
  ``ExperimentResults.summary()`` (bootstrap CIs and seed-paired
  savings included) against the already-built file.  This is what the
  service's ``GET /v1/experiments`` endpoints pay per request.

One real simulation seeds the report; the cache is then fanned out to
``--rows`` entries with distinct synthetic meta sidecars (seed/scheme
varied), so ingest scales without simulating hundreds of cells —
flattening cost is per-blob, not per-simulated-cycle.  Each run
*appends* one entry to a history file::

    PYTHONPATH=src python benchmarks/bench_report.py --rows 200
    # -> BENCH_report.json {"history": [{rows: 200, ingest_rps: ...}]}

Run under pytest it doubles as a smoke test (few rows, no JSON).
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import sys
import tempfile
import time
from pathlib import Path

from repro.analytics.results import ExperimentResults
from repro.analytics.warehouse import Warehouse
from repro.harness.cache import ResultCache
from repro.harness.runner import Runner
from repro.harness.schemes import evaluation_schemes

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_report.json"

APP = "SCP"
DEFAULT_SCALE = 0.05
DEFAULT_ROWS = 200
QUERY_REPEATS = 50


def _percentile_ms(latencies: list[float], q: float) -> float:
    """The q-quantile of a latency sample, in milliseconds."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index] * 1000.0


def build_cache(root: Path, *, rows: int, scale: float) -> ResultCache:
    """A cache of ``rows`` blobs fanned out from one real simulation.

    The report payload is real (so flattening exercises every field);
    the meta sidecars vary seed and the keys are synthetic, which is
    all ingest looks at for grouping.
    """
    cache = ResultCache(root, enabled=True)
    runner = Runner(scale=scale, seed=7, cache=None, verbose=False)
    try:
        scheme = evaluation_schemes()["Static-AMS"]
        report = runner.run(APP, scheme, measure_error=True)
    finally:
        runner.close()
    spec_doc = {"device": "gddr5", "ecc": "none"}
    for i in range(rows):
        cache.store(
            f"bench{i:08d}",
            report,
            meta={
                "app": APP,
                "scale": scale,
                "seed": i,
                "spec": spec_doc,
            },
        )
    return cache


def measure_ingest(cache: ResultCache, db: Path) -> dict:
    """One cold ingest of the whole cache, plus a no-op re-ingest."""
    with Warehouse(db) as warehouse:
        start = time.perf_counter()
        count = warehouse.ingest_cache(cache)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        warehouse.ingest_cache(cache)
        warm = time.perf_counter() - start
    return {
        "rows": count,
        "cold_seconds": cold,
        "rps": count / cold if cold > 0 else 0.0,
        "reingest_seconds": warm,
    }


def measure_queries(db: Path, *, repeats: int) -> dict:
    """Warm filtered reads and one full summary against a built file."""
    with Warehouse(db) as warehouse:
        latencies = []
        for i in range(repeats):
            start = time.perf_counter()
            rows = warehouse.rows(seed=i % 8)
            latencies.append(time.perf_counter() - start)
            assert rows, "filtered query returned nothing"
        start = time.perf_counter()
        summary = ExperimentResults(warehouse).summary()
        summary_seconds = time.perf_counter() - start
    return {
        "repeats": repeats,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "summary_ms": summary_seconds * 1000.0,
        "summary_groups": summary["n_groups"],
    }


def run_benchmark(*, rows: int, scale: float, repeats: int) -> dict:
    """One history entry: build, ingest, query."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-report-") as tmp:
        root = Path(tmp)
        cache = build_cache(root / "cache", rows=rows, scale=scale)
        ingest = measure_ingest(cache, root / "wh.sqlite")
        queries = measure_queries(root / "wh.sqlite", repeats=repeats)
    return {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "app": APP,
        "scale": scale,
        "ingest": ingest,
        "queries": queries,
        # Flat aliases the EXPERIMENTS recipes and CI smoke read.
        "rows": ingest["rows"],
        "ingest_rps": ingest["rps"],
        "query_p99_ms": queries["p99_ms"],
        "summary_ms": queries["summary_ms"],
    }


def append_history(out: Path, entry: dict) -> dict:
    """Append ``entry`` to the benchmark history file (creating it)."""
    doc = {"benchmark": "report", "history": []}
    if out.exists():
        try:
            previous = json.loads(out.read_text())
        except json.JSONDecodeError:
            previous = {}
        if isinstance(previous.get("history"), list):
            doc["history"] = previous["history"]
    doc["history"].append(entry)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--rows", type=int, default=DEFAULT_ROWS,
        help=f"cache blobs to fan out and ingest (default {DEFAULT_ROWS})",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help=f"simulated fraction of the seed cell (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--repeats", type=int, default=QUERY_REPEATS,
        help=f"warm filtered queries to time (default {QUERY_REPEATS})",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    entry = run_benchmark(
        rows=args.rows, scale=args.scale, repeats=args.repeats
    )
    print(
        f"rows={entry['rows']}: ingest {entry['ingest_rps']:.0f} rows/s "
        f"(re-ingest {entry['ingest']['reingest_seconds']:.2f} s), "
        f"query p99 {entry['query_p99_ms']:.2f} ms, "
        f"summary {entry['summary_ms']:.0f} ms "
        f"over {entry['queries']['summary_groups']} group(s)"
    )
    append_history(Path(args.out), entry)
    print(f"appended to {args.out}")
    return 0


def test_report_bench_smoke(tmp_path):
    """Pytest entry: a few rows end to end, real ingest and queries."""
    entry = run_benchmark(rows=16, scale=0.05, repeats=8)
    assert entry["rows"] == 16
    assert entry["ingest_rps"] > 0
    assert entry["query_p99_ms"] >= 0
    assert entry["queries"]["summary_groups"] >= 1
    doc = append_history(tmp_path / "bench.json", entry)
    assert len(doc["history"]) == 1
    doc = append_history(tmp_path / "bench.json", entry)
    assert len(doc["history"]) == 2


if __name__ == "__main__":
    sys.exit(main())
