"""Fig. 4 — delayed memory scheduling sweep: activations and IPC.

Paper: average activation reduction grows with the delay (up to ~31 %
at DMS(2048)); many applications keep >= 95 % IPC at moderate delays.
"""

from conftest import SWEEP_APPS

from repro.harness.experiments import DELAY_SWEEP, fig04
from repro.harness.tables import geomean


def test_fig04_dms_sweep(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig04(runner, apps=SWEEP_APPS), rounds=1, iterations=1
    )
    print()
    print(result.text)
    acts = result.data["activations"]
    ipcs = result.data["ipc"]
    act_means = {
        d: geomean(acts[a][d] for a in SWEEP_APPS) for d in DELAY_SWEEP
    }
    # Activation count decreases monotonically (on average) with delay,
    # with a sizeable reduction at the largest delay.
    assert act_means[2048] <= act_means[256] <= act_means[64] + 1e-9
    assert act_means[2048] < 0.85
    # Modest delays cost little IPC; large delays cost more.
    ipc_means = {
        d: geomean(ipcs[a][d] for a in SWEEP_APPS) for d in DELAY_SWEEP
    }
    assert ipc_means[64] > 0.8
    assert ipc_means[2048] <= ipc_means[128]
