"""Fig. 10 — IPC is linearly correlated with DRAM bandwidth utilisation.

This correlation is what lets Dyn-DMS track performance locally at the
memory controller.
"""

from repro.harness.experiments import fig10


def test_fig10_bwutil_ipc(runner, benchmark):
    apps = ("SCP", "MVT", "CONS", "newtonraph")
    result = benchmark.pedantic(
        lambda: fig10(runner, apps=apps), rounds=1, iterations=1
    )
    print()
    print(result.text)
    corr = result.data["corr"]
    strong = sum(1 for app in apps if corr[app] > 0.85)
    assert strong >= 3, f"correlations too weak: {corr}"
