"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at the
calibrated workload scale (``REPRO_BENCH_SCALE``, default 1.0 — the
operating point the traces were tuned for; smaller values are smoke
runs whose delay dynamics are distorted because DMS delays and visit
skews are absolute cycle quantities). Benchmarks print the same
rows/series the paper reports; pytest-benchmark records the harness
runtime.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import Runner

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Representative application subset used by the sweep-style benchmarks
#: (full Table II coverage is exercised by bench_table2).
SWEEP_APPS = ("SCP", "LPS", "MVT", "GEMM", "3MM", "newtonraph")


@pytest.fixture(scope="session")
def runner() -> Runner:
    """One memoising runner shared by every benchmark in the session."""
    return Runner(scale=SCALE, verbose=False)
