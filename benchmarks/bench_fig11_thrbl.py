"""Fig. 11 — lowering Th_RBL focuses AMS on the lowest-RBL rows (SCP).

Paper: SCP has >10 % of requests at RBL(1), so AMS(1) removes more
activations per unit of coverage than AMS(8).
"""

from repro.harness.experiments import fig11


def test_fig11_thrbl(runner, benchmark):
    result = benchmark.pedantic(lambda: fig11(runner, app="SCP"),
                                rounds=1, iterations=1)
    print()
    print(result.text)
    acts = result.data["acts"]
    # A low threshold matches or beats the static Th of 8 (without DMS
    # the margin is noise-level: AMS alone mis-drops partially-arrived
    # groups — the paper's own Fig. 8 caveat and the reason DMS helps
    # AMS identify true low-RBL rows).
    assert min(acts[th] for th in (1, 2, 3, 4)) <= acts[8] + 0.01
    # SCP's signature: a sizeable RBL(1) request population.
    assert result.data["rbl1_request_share"] > 0.05
    # Coverage stays at the user bound across the whole Th range.
    assert all(c <= 0.10 + 1e-9 for c in result.data["coverage"].values())
