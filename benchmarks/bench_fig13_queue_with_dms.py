"""Fig. 13 — pending-queue size under DMS(2048).

Paper: activation counts stabilise from 128 entries on, so the baseline
queue suffices for DMS.
"""

from conftest import SWEEP_APPS

from repro.harness.experiments import fig13
from repro.harness.tables import geomean

APPS = SWEEP_APPS[:4]


def test_fig13_queue_with_dms(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig13(runner, apps=APPS), rounds=1, iterations=1
    )
    print()
    print(result.text)
    data = result.data["normalized_acts"]
    m128 = geomean(data[a][128] for a in APPS)
    m192 = geomean(data[a][192] for a in APPS)
    m256 = geomean(data[a][256] for a in APPS)
    # Growth beyond 128 entries changes activations only marginally.
    assert abs(m192 - m128) < 0.08
    assert abs(m256 - m128) < 0.10
    # And DMS(2048) with the baseline queue reduces activations.
    assert m128 < 1.0
