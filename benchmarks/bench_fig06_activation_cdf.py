"""Fig. 6 — a small request fraction causes a large activation fraction.

Paper: for GEMM ~10 % of reads (RBL(1-2)) cause ~65 % of activations;
for 3MM ~0.2 % of reads cause ~45 % of activations.
"""

import numpy as np

from repro.harness.experiments import fig06


def _act_fraction_at(points, req_fraction: float) -> float:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return float(np.interp(req_fraction, xs, ys))


def test_fig06_activation_cdf(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig06(runner, apps=("GEMM", "3MM")), rounds=1, iterations=1
    )
    print()
    print(result.text)
    curves = result.data["curves"]
    # GEMM: the first ~10 % of requests account for a disproportionate
    # share of the activations (paper: ~65 %).
    gemm_share = _act_fraction_at(curves["GEMM"], 0.10)
    assert gemm_share > 0.25
    # 3MM: an even smaller request fraction dominates.
    mm3_share = _act_fraction_at(curves["3MM"], 0.05)
    assert mm3_share > 0.15
    # The CDF is strongly super-linear at the low end for both.
    for app in ("GEMM", "3MM"):
        assert _act_fraction_at(curves[app], 0.2) > 0.2
