"""Fig. 12 — the headline result: row energy, IPC, error, coverage.

Paper (groups 1-3): row energy falls ~12 % with Dyn-DMS, ~33 % with
Static-AMS, ~44 % with Dyn-DMS + Dyn-AMS; every scheme keeps >= 95 %
IPC (the AMS schemes can even gain); the mean application error stays
moderate at <= 10 % coverage.
"""

import numpy as np

from conftest import SCALE

from repro.harness.experiments import fig12
from repro.harness.tables import geomean

#: A group-1..3 subset that keeps the benchmark affordable; run
#: `repro-harness fig12` for the full population.
APPS = ("SCP", "BICG", "LPS", "MVT", "3DCONV", "3MM", "meanfilter")


def test_fig12_main_results(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig12(runner, apps=APPS), rounds=1, iterations=1
    )
    print()
    print(result.text)
    m = result.data["metrics"]

    def mean(metric, label):
        return geomean(m[metric][(a, label)] for a in APPS)

    energy_dyn_dms = mean("row_energy", "Dyn-DMS")
    energy_static_ams = mean("row_energy", "Static-AMS")
    energy_combo = mean("row_energy", "Dyn-DMS+Dyn-AMS")
    # The paper's ordering: DMS < AMS < combined, all saving energy.
    # (Our Dyn-DMS is conservative — its 95 % BWUTIL guard on short
    # traces adopts smaller delays than the paper's long runs, so its
    # solo savings are modest; the combination still dominates.)
    assert energy_dyn_dms <= 1.0 + 1e-9
    assert energy_static_ams < energy_dyn_dms
    assert energy_combo <= energy_static_ams + 0.02
    assert energy_combo < 0.88  # headline-scale saving
    # IPC: dynamic schemes hold near baseline; AMS schemes do not lose.
    assert mean("ipc", "Dyn-DMS") > 0.9
    assert mean("ipc", "Dyn-AMS") > 0.95
    assert mean("ipc", "Dyn-DMS+Dyn-AMS") > 0.9
    # Coverage bounded by the user limit.
    cov = [m["coverage"][(a, "Dyn-DMS+Dyn-AMS")] for a in APPS]
    assert max(cov) <= 0.10 + 1e-6
    # Errors are moderate on the error-tolerant population.
    errs = [m["error"][(a, "Dyn-DMS+Dyn-AMS")] for a in APPS]
    assert float(np.mean(errs)) < 0.25
