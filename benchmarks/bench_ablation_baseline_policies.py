"""Ablation — baseline memory controller policy choices (Section II-C).

The paper's baseline is FR-FCFS with an open-row policy "commonly
employed to optimize for row buffer locality in GPUs". This ablation
quantifies that choice against plain FCFS and a close-row variant.
"""

from repro.config import SchedulerConfig, baseline_scheduler
from repro.harness.tables import format_table
from repro.sim.system import simulate
from repro.workloads import get_workload

APP = "SCP"

POLICIES = {
    "FR-FCFS/open (paper)": baseline_scheduler(),
    "FCFS/open": SchedulerConfig(arbiter="fcfs"),
    "FR-FCFS/close": SchedulerConfig(row_policy="close"),
}


def run_all(scale: float):
    out = {}
    for label, scheme in POLICIES.items():
        r = simulate(get_workload(APP, scale=scale), scheduler=scheme)
        out[label] = r
    return out


def test_baseline_policy_ablation(runner, benchmark):
    results = benchmark.pedantic(lambda: run_all(runner.scale),
                                 rounds=1, iterations=1)
    base = results["FR-FCFS/open (paper)"]
    rows = [
        [label, r.activations, f"{r.avg_rbl:.2f}",
         f"{r.normalized_ipc(base):.2f}"]
        for label, r in results.items()
    ]
    print()
    print(format_table(
        ["policy", "activations", "avg RBL", "IPC vs paper baseline"],
        rows, title=f"Baseline policy ablation on {APP}",
    ))
    # The paper's FR-FCFS/open baseline maximises row locality.
    assert base.avg_rbl >= results["FCFS/open"].avg_rbl - 1e-9
    assert base.activations <= results["FR-FCFS/close"].activations
