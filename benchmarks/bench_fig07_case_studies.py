"""Fig. 7 — how AMS helps DMS (LPS and SCP case studies).

Paper: (a) LPS's activations barely respond to delay, but AMS(8)
reduces them while *improving* IPC; (b) for SCP, adding AMS(8) to
DMS(256) recovers the IPC lost to the delay while reducing activations
further.
"""

from repro.harness.experiments import fig07


def test_fig07_case_studies(runner, benchmark):
    result = benchmark.pedantic(lambda: fig07(runner), rounds=1,
                                iterations=1)
    print()
    print(result.text)
    rows = result.data["rows"]
    # (a) LPS: AMS reduces activations more than DMS(512) does, without
    # the delay's IPC penalty.
    lps_dms = rows[("LPS", "DMS(512)")]
    lps_ams = rows[("LPS", "AMS(8)")]
    assert lps_ams[0] < lps_dms[0] + 0.05  # norm acts
    assert lps_ams[1] > lps_dms[1]  # norm IPC
    # (b) SCP: the combination reduces activations at least as much as
    # either component and recovers IPC relative to DMS(256) alone.
    scp_dms = rows[("SCP", "DMS(256)")]
    scp_combo = rows[("SCP", "DMS(256)+AMS(8)")]
    assert scp_combo[0] <= scp_dms[0]
    assert scp_combo[1] >= scp_dms[1]
