"""Ablation — value-predictor choice vs application error.

DESIGN.md calls out the VP unit as swappable (Section IV-D supports
"a large variety of previously proposed value prediction mechanisms").
This ablation compares the paper's nearest-line predictor against
last-value, zero, and an exact oracle at the same coverage.
"""

from repro.config import AMSConfig, AMSMode, SchedulerConfig, VPConfig
from repro.harness.tables import format_table
from repro.sim.system import simulate
from repro.workloads import get_workload

APP = "meanfilter"  # smooth data: predictor quality is clearly visible


def scheme(kind: str) -> SchedulerConfig:
    return SchedulerConfig(
        ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=8,
                      coverage_limit=0.10, warmup_fills=64),
        vp=VPConfig(kind=kind),
    )


def run_all(scale: float) -> dict[str, float]:
    errors = {}
    for kind in ("oracle", "nearest_line", "last_value", "zero"):
        wl = get_workload(APP, scale=scale)
        report = simulate(wl, scheduler=scheme(kind), measure_error=True)
        errors[kind] = report.application_error or 0.0
    return errors


def test_value_predictor_ablation(runner, benchmark):
    errors = benchmark.pedantic(
        lambda: run_all(runner.scale), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["predictor", "application error"],
            [[k, v] for k, v in errors.items()],
            title=f"VP ablation on {APP} (10 % coverage)",
        )
    )
    # The oracle is exact; the paper's nearest-line predictor beats
    # blind zero prediction on smooth data.
    assert errors["oracle"] == 0.0
    assert errors["nearest_line"] <= errors["zero"]
