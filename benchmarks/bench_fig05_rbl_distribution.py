"""Fig. 5 — how delay shifts the activation RBL distribution.

Paper: the RBL(1) share of activations shrinks as the delay grows,
while higher-RBL shares grow.
"""

from repro.harness.experiments import fig05


def test_fig05_rbl_distribution(runner, benchmark):
    result = benchmark.pedantic(
        lambda: fig05(runner, apps=("GEMM", "newtonraph")), rounds=1,
        iterations=1
    )
    print()
    print(result.text)
    for app in ("GEMM", "newtonraph"):
        shares = result.data["shares"][app]
        rbl1_baseline = shares[0][0]
        rbl1_delayed = shares[2048][0]
        assert rbl1_delayed <= rbl1_baseline + 1e-9
        # Mass moved to higher-RBL buckets.
        high_baseline = sum(shares[0][2:])
        high_delayed = sum(shares[2048][2:])
        assert high_delayed >= high_baseline - 1e-9
