"""Raw simulator throughput: engine events per wall-clock second.

Unlike the figure benchmarks (which time whole experiment harnesses,
caches included), this one measures the hot path itself: each cell
builds a :class:`~repro.sim.system.GPUSystem` directly, runs it to
completion with every cache layer out of the picture, and reads the
engine's event counters. The result is written to
``BENCH_sim_throughput.json`` at the repository root so successive
commits can be compared::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --scale 0.5 --jobs 4 --out BENCH_sim_throughput.json

The JSON records, per (app, scheme) cell: events processed/cancelled,
wall seconds, and events/sec; plus a matrix section timing a fresh
``Runner.run_matrix`` at each fan-out level (1/2/4/8 workers, plus a
thread-mode run), every pooled level against a *prewarmed*
:class:`~repro.harness.pool.WarmPool` so the numbers compare dispatch
cost rather than process start-up. Parallel speedups are only
meaningful on a multi-core host — on one core they hover at or below
1.0 by construction.

The output file keeps a dated ``history`` list: each run replaces
``latest`` and appends a compact summary entry, so regressions are
visible across commits without digging through git history.

Run under pytest it doubles as a smoke test (tiny scale, no JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.harness.runner import Runner
from repro.harness.schemes import dms_only, evaluation_schemes
from repro.sim.system import GPUSystem
from repro.workloads.registry import get_workload

#: Default (app, scheme label) cells: one latency-bound and one
#: bandwidth-bound application, each baseline and under DMS(128).
DEFAULT_APPS = ("SCP", "GEMM")

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_sim_throughput.json"


def _cell_schemes() -> dict:
    return {
        "Baseline": evaluation_schemes()["Baseline"],
        "DMS(128)": dms_only(128),
    }


def measure_cell(app: str, label: str, scheme, *, scale: float,
                 seed: int, telemetry_window: int = 0) -> dict:
    """Simulate one cell from scratch and report engine throughput.

    ``telemetry_window > 0`` attaches a live :class:`MetricsHub` with
    that window size, timing the windowed sampler alongside the run.
    """
    from repro.dram.request import reset_request_ids
    from repro.telemetry import MetricsHub

    reset_request_ids()
    workload = get_workload(app, scale=scale, seed=seed)
    hub = (
        MetricsHub(window_cycles=telemetry_window)
        if telemetry_window > 0 else None
    )
    system = GPUSystem(scheduler=scheme, telemetry=hub)
    streams = workload.warp_streams(system.config)
    start = time.perf_counter()
    system.run(streams, workload_name=workload.name)
    wall = time.perf_counter() - start
    events = system.engine.events_processed
    return {
        "app": app,
        "scheme": label,
        "events_processed": events,
        "events_cancelled": system.engine.events_cancelled,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall) if wall > 0 else 0,
    }


def measure_telemetry_overhead(apps, *, scale: float, seed: int,
                               window: int) -> dict:
    """Wall-clock cost of running the windowed telemetry sampler.

    Times every (app, scheme) cell twice — hub off, then hub on with
    ``window``-cycle sampling — and reports the relative slowdown. The
    disabled path must stay within the observability budget (the hub
    off number is the one the ``cells`` section also measures: the
    no-op ``NULL_HUB`` leaves the hot loops untouched).
    """
    off = on = 0.0
    for app in apps:
        for label, scheme in _cell_schemes().items():
            off += measure_cell(app, label, scheme, scale=scale,
                                seed=seed)["wall_s"]
            on += measure_cell(app, label, scheme, scale=scale,
                               seed=seed,
                               telemetry_window=window)["wall_s"]
    return {
        "window_cycles": window,
        "off_wall_s": round(off, 4),
        "on_wall_s": round(on, 4),
        "overhead_pct": (
            round(100.0 * (on - off) / off, 2) if off > 0 else None
        ),
    }


def measure_tenants(*, scale: float, seed: int) -> dict:
    """Composer + arbiter overhead of the multi-tenant path.

    Times one 3-tenant mix (one tenant per service class, batch-fair
    arbitration) against the summed solo runs of its members on the
    same scheme: the delta is what trace interleaving, per-request
    tenant tagging, the arbiter fold, and the tracker hooks cost.
    """
    from repro.config.tenants import TenantMixSpec, TenantSpec
    from repro.dram.request import reset_request_ids
    from repro.sim.spec import SimSpec
    from repro.sim.system import simulate_spec
    from repro.workloads.tenant_mix import TenantMix

    scheme = dms_only(128)
    mix = TenantMixSpec(
        tenants=(
            TenantSpec(name="lat", workload="SCP",
                       tenant_class="latency", scale=scale),
            TenantSpec(name="bw", workload="GEMM",
                       tenant_class="bandwidth", scale=scale),
            TenantSpec(name="ax", workload="blackscholes",
                       tenant_class="approx-batch", scale=scale),
        ),
        arbiter="batch-fair",
    )
    reset_request_ids()
    workload = TenantMix(mix, scale=1.0, seed=seed)
    start = time.perf_counter()
    report = simulate_spec(
        workload, SimSpec(scheduler=scheme, tenants=mix)
    )
    mix_wall = time.perf_counter() - start
    solo_wall = 0.0
    for tenant in mix.tenants:
        reset_request_ids()
        solo = get_workload(
            tenant.workload, scale=scale, seed=seed
        )
        start = time.perf_counter()
        simulate_spec(solo, SimSpec(scheduler=scheme))
        solo_wall += time.perf_counter() - start
    return {
        "arbiter": mix.arbiter,
        "tenants": len(mix.tenants),
        "mix_wall_s": round(mix_wall, 4),
        "solo_sum_wall_s": round(solo_wall, 4),
        "overhead_pct": (
            round(100.0 * (mix_wall - solo_wall) / solo_wall, 2)
            if solo_wall > 0 else None
        ),
        "requests_served": report.requests_served,
    }


def _time_matrix(apps, schemes, *, scale: float, seed: int,
                 jobs: int, threads: bool = False) -> float:
    """One fresh ``run_matrix`` against a prewarmed pool, in seconds."""
    runner = Runner(scale=scale, seed=seed, verbose=False,
                    cache=None, jobs=jobs, threads=threads)
    runner.prewarm()
    start = time.perf_counter()
    runner.run_matrix(apps, schemes)
    wall = time.perf_counter() - start
    runner.close()
    return round(wall, 4)


def measure_matrix(apps, *, scale: float, seed: int,
                   jobs_levels=(1, 2, 4, 8)) -> dict:
    """Jobs-scaling sweep: one fresh (apps x schemes) matrix per level.

    Every pooled level runs against a prewarmed
    :class:`~repro.harness.pool.WarmPool`, so the comparison is
    steady-state dispatch cost, not worker start-up. A thread-mode run
    at the widest level rides along (no serialization, shared GIL).
    """
    schemes = _cell_schemes()
    levels: dict[str, dict] = {}
    serial = None
    for n in jobs_levels:
        wall = _time_matrix(apps, schemes, scale=scale, seed=seed, jobs=n)
        entry = {"wall_s": wall}
        if n == 1:
            serial = wall
        if serial is not None and wall > 0:
            entry["speedup_vs_serial"] = round(serial / wall, 3)
        levels[f"jobs{n}"] = entry
    widest = max(jobs_levels)
    if widest > 1:
        wall = _time_matrix(apps, schemes, scale=scale, seed=seed,
                            jobs=widest, threads=True)
        entry = {"wall_s": wall}
        if serial is not None and wall > 0:
            entry["speedup_vs_serial"] = round(serial / wall, 3)
        levels[f"threads{widest}"] = entry
    return {"cells": len(apps) * len(schemes), "levels": levels}


def run_benchmark(*, scale: float, seed: int, jobs: int,
                  apps=DEFAULT_APPS, matrix: bool = True,
                  telemetry_window: int = 0,
                  tenants: bool = False) -> dict:
    cells = [
        measure_cell(app, label, scheme, scale=scale, seed=seed)
        for app in apps
        for label, scheme in _cell_schemes().items()
    ]
    total_events = sum(c["events_processed"] for c in cells)
    total_wall = sum(c["wall_s"] for c in cells)
    result = {
        "benchmark": "sim_throughput",
        "scale": scale,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "total": {
            "events_processed": total_events,
            "wall_s": round(total_wall, 4),
            "events_per_s": (
                round(total_events / total_wall) if total_wall > 0 else 0
            ),
        },
    }
    if matrix:
        jobs_levels = tuple(
            sorted({n for n in (1, 2, 4, 8) if n <= jobs} | {jobs})
        )
        result["matrix"] = measure_matrix(
            apps, scale=scale, seed=seed, jobs_levels=jobs_levels
        )
    if telemetry_window > 0:
        result["telemetry"] = measure_telemetry_overhead(
            apps, scale=scale, seed=seed, window=telemetry_window
        )
    if tenants:
        result["tenants"] = measure_tenants(scale=scale, seed=seed)
    return result


def _summarize(result: dict, *, date: str) -> dict:
    """Compact history entry for one benchmark run."""
    entry = {
        "date": date,
        "scale": result.get("scale"),
        "seed": result.get("seed"),
        "events_per_s": result.get("total", {}).get("events_per_s"),
    }
    matrix = result.get("matrix")
    if isinstance(matrix, dict):
        if "levels" in matrix:
            entry["matrix_speedups"] = {
                level: data.get("speedup_vs_serial")
                for level, data in matrix["levels"].items()
            }
        elif "speedup" in matrix:  # pre-scaling single-level format
            entry["matrix_speedups"] = {"jobs": matrix["speedup"]}
    tenants = result.get("tenants")
    if isinstance(tenants, dict):
        entry["tenants_overhead_pct"] = tenants.get("overhead_pct")
    return entry


def _load_history(path: Path) -> list:
    """Prior runs' summary entries; tolerates every past file format."""
    if not path.exists():
        return []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(doc, dict):
        if isinstance(doc.get("history"), list):
            return doc["history"]
        if "total" in doc:  # single-result format of earlier revisions
            return [_summarize(doc, date="(pre-history)")]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure raw simulator throughput (events/sec)."
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload size multiplier")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", "-j", type=int, default=8,
                        help="widest fan-out level for the jobs-scaling "
                        "matrix timing (levels: 1/2/4/8 up to this)")
    parser.add_argument("--no-matrix", action="store_true",
                        help="skip the serial-vs-parallel matrix timing")
    parser.add_argument("--telemetry", type=int, nargs="?", const=4096,
                        default=0, metavar="WINDOW",
                        help="also time every cell with a live telemetry"
                        " hub (optional window size, default 4096) and"
                        " report the sampling overhead")
    parser.add_argument("--tenants", action="store_true",
                        help="also time a 3-tenant mix against the "
                        "summed solo runs of its members (composer + "
                        "arbiter overhead)")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    result = run_benchmark(
        scale=args.scale, seed=args.seed, jobs=max(1, args.jobs),
        matrix=not args.no_matrix,
        telemetry_window=max(0, args.telemetry),
        tenants=args.tenants,
    )
    out = Path(args.out)
    history = _load_history(out)
    history.append(
        _summarize(result, date=time.strftime("%Y-%m-%d %H:%M:%S"))
    )
    document = {
        "benchmark": "sim_throughput",
        "latest": result,
        "history": history,
    }
    out.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    for cell in result["cells"]:
        print(
            f"{cell['app']:>12} {cell['scheme']:<10}"
            f" {cell['events_processed']:>9} events"
            f" {cell['wall_s']:>8.3f}s"
            f" {cell['events_per_s']:>9} ev/s"
        )
    total = result["total"]
    print(f"{'TOTAL':>12} {'':<10} {total['events_processed']:>9} events"
          f" {total['wall_s']:>8.3f}s {total['events_per_s']:>9} ev/s")
    if "matrix" in result:
        m = result["matrix"]
        print(f"matrix ({m['cells']} cells):")
        for level, data in m["levels"].items():
            speed = data.get("speedup_vs_serial")
            extra = f"  {speed:.3f}x vs serial" if speed else ""
            print(f"  {level:>9}: {data['wall_s']:>8.3f}s{extra}")
    if "telemetry" in result:
        t = result["telemetry"]
        print(f"telemetry({t['window_cycles']}): off {t['off_wall_s']}s"
              f" on {t['on_wall_s']}s overhead {t['overhead_pct']}%")
    if "tenants" in result:
        t = result["tenants"]
        print(f"tenants({t['tenants']}x, {t['arbiter']}):"
              f" mix {t['mix_wall_s']}s"
              f" solo-sum {t['solo_sum_wall_s']}s"
              f" overhead {t['overhead_pct']}%")
    print(f"wrote {out}")
    return 0


def test_sim_throughput_smoke():
    """Tiny-scale smoke: every cell makes progress; no JSON is written."""
    result = run_benchmark(scale=0.1, seed=7, jobs=1, matrix=False)
    assert result["cells"], "no cells measured"
    for cell in result["cells"]:
        assert cell["events_processed"] > 0
        assert cell["events_per_s"] > 0


def test_tenants_overhead_smoke():
    """The tenants measurement runs and reports both wall clocks."""
    data = measure_tenants(scale=0.05, seed=7)
    assert data["mix_wall_s"] > 0
    assert data["solo_sum_wall_s"] > 0
    assert data["requests_served"] > 0


if __name__ == "__main__":
    sys.exit(main())
