"""Reliability Pareto sweep — scheme x device x ECC code frontier.

Runs the ``repro-harness pareto`` experiment programmatically: every
cell simulates with the timing-dependent bit-flip injector enabled and
the table reports total/row energy, application error, the analytic
silent-corruption FIT, and carbon-per-GiB-year. The assertions pin the
qualitative shape the ECC layer must produce: real codes collapse the
silent-corruption FIT by orders of magnitude relative to unprotected
DRAM, at a measurable (but small) energy premium.
"""

from repro.harness.pareto import format_pareto_table, run_pareto

APP = "SCP"
SCHEMES = ("base", "dms2", "ams")
DEVICES = ("gddr5", "lpddr4")
ECC_CODES = ("none", "secded", "bch")
#: Elevated per-bit flip probability so scaled-down traces still see
#: a statistically meaningful number of injected flips.
P_BIT = 2e-6


def run_all(scale: float):
    return run_pareto(
        apps=[APP],
        scheme_tokens=list(SCHEMES),
        devices=list(DEVICES),
        ecc_codes=list(ECC_CODES),
        scale=scale,
        p_bit=P_BIT,
        cache=None,
        verbose=False,
    )


def test_reliability_pareto(runner, benchmark):
    rows = benchmark.pedantic(lambda: run_all(runner.scale),
                              rounds=1, iterations=1)
    print()
    print(format_pareto_table(rows))

    by_cell = {(r.scheme, r.device, r.ecc): r for r in rows}
    assert len(by_cell) == len(SCHEMES) * len(DEVICES) * len(ECC_CODES)
    for device in DEVICES:
        raw = by_cell[("Baseline", device, "none")]
        protected = by_cell[("Baseline", device, "secded")]
        # SEC-DED turns almost every injected flip into a correction:
        # the silent-corruption FIT must collapse by orders of
        # magnitude versus unprotected cells...
        assert protected.fit < raw.fit / 1e3
        # ...and the check trees cost real, nonzero energy.
        assert protected.energy_nj > raw.energy_nj
    # The frontier is non-trivial: some cells dominated, some not.
    frontier = [r for r in rows if r.frontier]
    assert 0 < len(frontier) < len(rows)
    # AMS drops spare reads from injection entirely — dropped requests
    # never touch the faulty cells.
    ams_rows = [r for r in rows if r.scheme == "Static-AMS"]
    assert all(r.app_error > 0.0 for r in ams_rows)
