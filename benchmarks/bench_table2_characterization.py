"""Table II/III — measure and classify every application feature.

Classifies thrashing level, delay tolerance, activation sensitivity,
Th_RBL sensitivity and error tolerance of all twenty applications with
the paper's Table III thresholds, and compares against the published
Table II levels.
"""

from repro.harness.experiments import table2


def test_table2_characterization(runner, benchmark):
    result = benchmark.pedantic(lambda: table2(runner), rounds=1,
                                iterations=1)
    print()
    print(result.text)
    # A qualitative reproduction: most of the 100 feature cells match
    # the paper's classification (exact agreement is not expected on a
    # rebuilt substrate; EXPERIMENTS.md records the full comparison).
    assert result.data["matches"] >= 0.55 * result.data["total"]
