"""Ablation — design choices DESIGN.md calls out.

1. DMS gating granularity: the per-bank oldest-request gate against a
   plain FR-FCFS (delay 0) shows where the row-merging headroom is.
2. AMS warm-up: without L2 warm-up the first drops have no donor lines.
"""

from repro.config import (
    AMSConfig,
    AMSMode,
    SchedulerConfig,
    baseline_scheduler,
    static_dms,
)
from repro.harness.tables import format_table
from repro.sim.system import simulate
from repro.workloads import get_workload

APP = "SCP"


def run_matrix(scale: float) -> dict[str, object]:
    base = simulate(get_workload(APP, scale=scale),
                    scheduler=baseline_scheduler())
    dms = simulate(get_workload(APP, scale=scale),
                   scheduler=static_dms(512))
    drops_by_warmup = {}
    for warmup in (0, 256, 2048):
        sched = SchedulerConfig(
            ams=AMSConfig(mode=AMSMode.STATIC, static_th_rbl=8,
                          coverage_limit=0.10, warmup_fills=warmup)
        )
        r = simulate(get_workload(APP, scale=scale), scheduler=sched)
        with_donor = sum(
            1 for d in r.drops if d.donor_line_addr is not None
        )
        drops_by_warmup[warmup] = (len(r.drops), with_donor)
    return {"base": base, "dms": dms, "warmup": drops_by_warmup}


def test_queue_and_warmup_ablation(runner, benchmark):
    out = benchmark.pedantic(lambda: run_matrix(runner.scale),
                             rounds=1, iterations=1)
    base, dms = out["base"], out["dms"]
    rows = [
        ["baseline", base.activations, f"{base.avg_rbl:.2f}"],
        ["DMS(512)", dms.activations, f"{dms.avg_rbl:.2f}"],
    ]
    print()
    print(format_table(["scheme", "activations", "avg RBL"], rows,
                       title="DMS gate ablation"))
    warm_rows = [
        [w, n, d] for w, (n, d) in out["warmup"].items()
    ]
    print(format_table(["warmup fills", "drops", "with donor"], warm_rows,
                       title="AMS warm-up ablation"))
    assert dms.activations < base.activations
    assert dms.avg_rbl > base.avg_rbl
    # Warm-up can only reduce the number of donor-less drops.
    frac = {
        w: (d / n if n else 1.0) for w, (n, d) in out["warmup"].items()
    }
    assert frac[2048] >= frac[0] - 0.02
