"""Section V — memory-system energy projections for HBM1/HBM2.

Paper: the same row-energy savings project to ~22 % system-energy
reduction on HBM1 (row energy ~50 % of total) and ~11 % on HBM2 (~25 %).
"""

from repro.harness.experiments import hbm_projection
from repro.harness.tables import geomean

APPS = ("SCP", "LPS", "MVT", "3MM")


def test_hbm_energy_projection(runner, benchmark):
    result = benchmark.pedantic(
        lambda: hbm_projection(runner, apps=APPS), rounds=1, iterations=1
    )
    print()
    print(result.text)
    hbm1 = geomean(result.data["hbm1"])
    hbm2 = geomean(result.data["hbm2"])
    # Both save energy; HBM1 saves roughly twice as much as HBM2
    # (because its row-energy share is twice as large).
    assert hbm1 < 1.0 and hbm2 < 1.0
    assert (1 - hbm1) > 1.5 * (1 - hbm2)
