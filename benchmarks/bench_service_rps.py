"""Service daemon throughput: cache-hit requests per second.

The daemon's cheap path — a submission whose content key is already in
the persistent result cache — never touches the worker pool: admission
probes the cache on the event loop and answers ``200 cached`` with the
full report attached. This benchmark measures that path end-to-end
(HTTP parse, admission, journal append, JSON response) because it
bounds how fast a sweep script can drain a warmed cache through the
service instead of importing the Runner directly::

    PYTHONPATH=src python benchmarks/bench_service_rps.py
    PYTHONPATH=src python benchmarks/bench_service_rps.py \
        --requests 500 --clients 8 --out BENCH_service_rps.json

The JSON records, per client count: requests issued, wall seconds, and
requests/sec, plus the status-endpoint RPS for comparison (no journal
write, no cache probe). Run under pytest it doubles as a smoke test
(few requests, no JSON).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.server import ServiceDaemon

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_service_rps.json"

#: Tiny but real simulation used to prime the cache once.
APP = "synthetic"
SCALE = 0.05
SEED = 7


def _start_daemon(root: Path) -> ServiceDaemon:
    daemon = ServiceDaemon(
        port=0,
        workers=1,
        cache=ResultCache(root / "cache", enabled=True),
        journal_path=root / "journal.jsonl",
        verbose=False,
    )
    daemon.start_in_thread()
    return daemon


def _prime(daemon: ServiceDaemon) -> None:
    """Run the one real simulation whose result every request rereads."""
    client = ServiceClient(port=daemon.port)
    job = client.submit(APP, scale=SCALE, seed=SEED)
    client.wait_for_report(job["id"], timeout=300)


def measure_cached_rps(
    daemon: ServiceDaemon, *, requests: int, clients: int
) -> dict:
    """Issue ``requests`` warm submissions across ``clients`` threads."""

    def one_client(count: int) -> int:
        client = ServiceClient(port=daemon.port)
        served = 0
        for _ in range(count):
            job = client.submit(APP, scale=SCALE, seed=SEED)
            assert job["outcome"] == "cached", job
            served += 1
        return served

    share = [requests // clients] * clients
    for i in range(requests % clients):
        share[i] += 1
    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(clients) as pool:
        total = sum(pool.map(one_client, share))
    elapsed = time.perf_counter() - start
    return {
        "clients": clients,
        "requests": total,
        "wall_seconds": elapsed,
        "rps": total / elapsed if elapsed > 0 else 0.0,
    }


def measure_status_rps(daemon: ServiceDaemon, *, requests: int) -> dict:
    """Healthz round trips: the protocol floor (no cache, no journal)."""
    client = ServiceClient(port=daemon.port)
    start = time.perf_counter()
    for _ in range(requests):
        client.healthz()
    elapsed = time.perf_counter() - start
    return {
        "requests": requests,
        "wall_seconds": elapsed,
        "rps": requests / elapsed if elapsed > 0 else 0.0,
    }


def run_benchmark(
    *, requests: int, client_counts: tuple[int, ...]
) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        daemon = _start_daemon(Path(tmp))
        try:
            _prime(daemon)
            cached = [
                measure_cached_rps(
                    daemon, requests=requests, clients=n
                )
                for n in client_counts
            ]
            status = measure_status_rps(daemon, requests=requests)
            counters = daemon.hub.snapshot()["counters"]
        finally:
            daemon.stop()
    return {
        "benchmark": "service_cache_hit_rps",
        "app": APP,
        "scale": SCALE,
        "seed": SEED,
        "cached_submit": cached,
        "healthz": status,
        "simulations_run": counters.get("service.simulations", 0.0),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--clients", default="1,4",
        help="comma-separated concurrent client counts (default 1,4)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)
    client_counts = tuple(
        int(n) for n in args.clients.split(",") if n.strip()
    )
    doc = run_benchmark(
        requests=args.requests, client_counts=client_counts
    )
    for row in doc["cached_submit"]:
        print(
            f"cached submit x{row['clients']} clients: "
            f"{row['rps']:8.1f} req/s "
            f"({row['requests']} in {row['wall_seconds']:.2f}s)"
        )
    print(f"healthz floor: {doc['healthz']['rps']:8.1f} req/s")
    assert doc["simulations_run"] == 1.0, doc["simulations_run"]
    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_service_rps_smoke(tmp_path):
    """Pytest entry: a handful of warm requests, exactly one sim."""
    doc = run_benchmark(requests=10, client_counts=(2,))
    assert doc["simulations_run"] == 1.0
    assert doc["cached_submit"][0]["requests"] == 10
    assert doc["cached_submit"][0]["rps"] > 0


if __name__ == "__main__":
    sys.exit(main())
