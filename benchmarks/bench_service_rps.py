"""Service daemon throughput: cold jobs/s and cache-hit requests/s.

The daemon has two serving regimes with very different economics:

* **cold** — the content key is unknown, so the job crosses the queue
  onto the supervised worker tier and runs a real simulation.  Cold
  throughput should scale with ``--workers`` until the submitting side
  (HTTP + journal, one event loop) saturates.
* **cache-hit** — admission probes the persistent cache on the event
  loop and answers ``200 cached`` with the full report attached; no
  worker is touched, so this path is independent of the tier size and
  bounds how fast a sweep script can drain a warmed cache.

This benchmark measures both end-to-end over real HTTP, plus the
``/v1/healthz`` round-trip floor, and *appends* one entry per run to a
history file so tier-size comparisons live side by side::

    PYTHONPATH=src python benchmarks/bench_service_rps.py --workers 1
    PYTHONPATH=src python benchmarks/bench_service_rps.py --workers 4
    # -> BENCH_service_rps.json {"history": [{workers: 1, ...},
    #                                        {workers: 4, ...}]}

``--attach --port P`` benchmarks an already-running daemon (e.g. one
started with ``--chaos 'exit@0/5'`` for a respawn-under-load drill)
instead of spawning a private one.  Run under pytest it doubles as a
smoke test (few jobs, no JSON).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import datetime
import json
import math
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.harness.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.server import ServiceDaemon

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_service_rps.json"

#: Tiny but real simulation; ``--scale`` stretches it so execution
#: (not protocol overhead) dominates the cold phase.
APP = "synthetic"
DEFAULT_SCALE = 0.4
SEED_BASE = 7


def _percentile_ms(latencies: list[float], q: float) -> float:
    """The q-quantile of a latency sample, in milliseconds."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index] * 1000.0


def _start_daemon(root: Path, *, workers: int, jobs: int) -> ServiceDaemon:
    daemon = ServiceDaemon(
        port=0,
        workers=workers,
        queue_size=max(64, 2 * jobs),
        cache=ResultCache(root / "cache", enabled=True),
        journal_path=root / "journal.jsonl",
        verbose=False,
    )
    daemon.start_in_thread()
    return daemon


def measure_cold(
    port: int, *, jobs: int, clients: int, scale: float, seed_base: int
) -> dict:
    """Submit ``jobs`` distinct-seed jobs and wait for each report.

    Distinct seeds defeat both the cache and request coalescing, so
    every job is a real simulation on the tier.  Per-job latency is
    submit-to-done wall clock as a client experiences it.
    """

    def one_job(seed: int) -> float:
        client = ServiceClient(port=port)
        start = time.perf_counter()
        job = client.submit(
            APP, scale=scale, seed=seed, retry_busy=50
        )
        client.wait(job["id"], poll_seconds=0.02, timeout=600.0)
        return time.perf_counter() - start

    seeds = [seed_base + i for i in range(jobs)]
    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(clients) as pool:
        latencies = list(pool.map(one_job, seeds))
    elapsed = time.perf_counter() - start
    return {
        "jobs": jobs,
        "clients": clients,
        "wall_seconds": elapsed,
        "rps": jobs / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
    }


def measure_cache_hit(
    port: int, *, requests: int, clients: int, scale: float, seed: int
) -> dict:
    """Re-submit one already-cached spec ``requests`` times."""

    def one_client(count: int) -> list[float]:
        client = ServiceClient(port=port)
        latencies = []
        for _ in range(count):
            start = time.perf_counter()
            job = client.submit(APP, scale=scale, seed=seed)
            latencies.append(time.perf_counter() - start)
            assert job["outcome"] == "cached", job
        return latencies

    share = [requests // clients] * clients
    for i in range(requests % clients):
        share[i] += 1
    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(clients) as pool:
        latencies = [
            lat for chunk in pool.map(one_client, share) for lat in chunk
        ]
    elapsed = time.perf_counter() - start
    return {
        "requests": requests,
        "clients": clients,
        "wall_seconds": elapsed,
        "rps": requests / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
    }


def measure_status_rps(port: int, *, requests: int) -> dict:
    """Healthz round trips: the protocol floor (no cache, no journal)."""
    client = ServiceClient(port=port)
    start = time.perf_counter()
    for _ in range(requests):
        client.healthz()
    elapsed = time.perf_counter() - start
    return {
        "requests": requests,
        "wall_seconds": elapsed,
        "rps": requests / elapsed if elapsed > 0 else 0.0,
    }


def run_benchmark(
    *,
    workers: int,
    jobs: int,
    requests: int,
    clients: int,
    scale: float,
    seed_base: int = SEED_BASE,
    port: Optional[int] = None,
) -> dict:
    """One history entry; ``port`` attaches to a running daemon."""

    def _measure(active_port: int, tier_doc: Optional[dict]) -> dict:
        cold = measure_cold(
            active_port, jobs=jobs, clients=clients,
            scale=scale, seed_base=seed_base,
        )
        hit = measure_cache_hit(
            active_port, requests=requests, clients=clients,
            scale=scale, seed=seed_base,
        )
        status = measure_status_rps(active_port, requests=requests)
        return {
            "timestamp": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "workers": workers,
            "app": APP,
            "scale": scale,
            "cold": cold,
            "cache_hit": hit,
            "healthz_rps": status["rps"],
            # Flat aliases the EXPERIMENTS recipes and CI smoke read.
            "cold_rps": cold["rps"],
            "cold_p99_ms": cold["p99_ms"],
            "hit_rps": hit["rps"],
            "hit_p99_ms": hit["p99_ms"],
            "tier": tier_doc,
        }

    if port is not None:
        tier = ServiceClient(port=port).healthz().get("tier")
        return _measure(port, tier)
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        daemon = _start_daemon(Path(tmp), workers=workers, jobs=jobs)
        try:
            entry = _measure(
                daemon.port, daemon.tier.healthz() if daemon.tier else None
            )
        finally:
            daemon.stop()
    return entry


def append_history(out: Path, entry: dict) -> dict:
    """Append ``entry`` to the benchmark history file (creating it)."""
    doc = {"benchmark": "service_rps", "history": []}
    if out.exists():
        try:
            previous = json.loads(out.read_text())
        except json.JSONDecodeError:
            previous = {}
        if isinstance(previous.get("history"), list):
            doc["history"] = previous["history"]
    doc["history"].append(entry)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--workers", type=int, default=1,
        help="tier size of the spawned daemon (default 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=16,
        help="distinct cold jobs to run (default 16)",
    )
    parser.add_argument(
        "--requests", type=int, default=200,
        help="cache-hit and healthz request count (default 200)",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client threads (default 8)",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help=f"simulated fraction per job (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--seed-base", type=int, default=SEED_BASE,
        help="first seed of the distinct-seed cold job stream",
    )
    parser.add_argument(
        "--attach", action="store_true",
        help="benchmark the daemon already listening on --port "
        "instead of spawning a private one",
    )
    parser.add_argument(
        "--port", type=int, default=8732,
        help="daemon port for --attach (default 8732)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    entry = run_benchmark(
        workers=args.workers,
        jobs=args.jobs,
        requests=args.requests,
        clients=args.clients,
        scale=args.scale,
        seed_base=args.seed_base,
        port=args.port if args.attach else None,
    )
    print(
        f"workers={entry['workers']} scale={entry['scale']}: "
        f"cold {entry['cold_rps']:.2f} jobs/s "
        f"(p99 {entry['cold_p99_ms']:.0f} ms), "
        f"cache-hit {entry['hit_rps']:.0f} req/s "
        f"(p99 {entry['hit_p99_ms']:.2f} ms), "
        f"healthz {entry['healthz_rps']:.0f} req/s"
    )
    append_history(Path(args.out), entry)
    print(f"appended to {args.out}")
    return 0


def test_service_rps_smoke(tmp_path):
    """Pytest entry: a handful of jobs at tiny scale, real daemon."""
    entry = run_benchmark(
        workers=2, jobs=4, requests=10, clients=2, scale=0.05
    )
    assert entry["cold"]["jobs"] == 4
    assert entry["cold_rps"] > 0
    assert entry["cache_hit"]["requests"] == 10
    assert entry["hit_rps"] > 0
    assert entry["tier"] and entry["tier"]["size"] == 2
    doc = append_history(tmp_path / "bench.json", entry)
    assert len(doc["history"]) == 1
    doc = append_history(tmp_path / "bench.json", entry)
    assert len(doc["history"]) == 2


if __name__ == "__main__":
    sys.exit(main())
