"""Ablation — address-mapping scheme vs row-buffer locality.

The paper's related work (Zhang et al., MICRO 2000) reduces row-buffer
conflicts by permuting the bank index; the paper argues its scheduling
approach is complementary. This ablation runs a thrash-heavy workload
under both mappings, with and without DMS.
"""

from repro.config import AddressMapping, GPUConfig, baseline_scheduler
from repro.harness.schemes import dms_only
from repro.harness.tables import format_table
from repro.sim.system import simulate
from repro.workloads import get_workload

APP = "MVT"


def config_for(scheme: str) -> GPUConfig:
    return GPUConfig(mapping=AddressMapping(scheme=scheme))


def run_all(scale: float):
    out = {}
    for scheme in ("bank_interleaved", "permuted"):
        cfg = config_for(scheme)
        base = simulate(get_workload(APP, scale=scale),
                        scheduler=baseline_scheduler(), config=cfg)
        dms = simulate(get_workload(APP, scale=scale),
                       scheduler=dms_only(1024), config=cfg)
        out[scheme] = (base, dms)
    return out


def test_address_mapping_ablation(runner, benchmark):
    results = benchmark.pedantic(lambda: run_all(runner.scale),
                                 rounds=1, iterations=1)
    rows = []
    for scheme, (base, dms) in results.items():
        rows.append([
            scheme,
            base.activations,
            f"{base.avg_rbl:.2f}",
            f"{1 - dms.activations / base.activations:.1%}",
        ])
    print()
    print(format_table(
        ["mapping", "baseline acts", "avg RBL", "DMS(1024) act reduction"],
        rows, title=f"Address-mapping ablation on {APP}",
    ))
    plain_base, plain_dms = results["bank_interleaved"]
    perm_base, perm_dms = results["permuted"]
    # Both mappings leave DMS headroom (the paper's complementarity
    # argument): delay still reduces activations under either scheme.
    assert plain_dms.activations < plain_base.activations
    assert perm_dms.activations < perm_base.activations
